//! Hash-key generation for task instances.
//!
//! Combines the runtime's view of a task (its read accesses over typed
//! regions) with the `atm-hash` sampling machinery (§III-B/§III-C of the
//! paper): the concatenated input bytes are sampled through a per-task-type
//! shuffled index vector (built once and cached) and hashed with the Jenkins
//! hash into the 8-byte key stored in the THT/IKT.
//!
//! The cost of computing a key is proportional to the number of *selected*
//! bytes: the sampled bytes are gathered directly from the typed region
//! storage, without serialising the whole input first. This is what makes
//! Dynamic ATM's small `p` values reduce the hashing overhead (the gap
//! between "Static ATM" and "Oracle (100%)" in Figure 3).

use crate::snapshot::elem_range_of;
use atm_hash::shuffle::InputSpec;
use atm_hash::{jenkins_hash64, ByteLayout, InputSampler, JenkinsStream, Percentage};
use atm_runtime::{Access, DataStore, RegionData, RegionReadGuard};
use atm_sync::Mutex;
use atm_sync::RwLockReadGuard;
use std::collections::HashMap;
use std::sync::Arc;

#[cfg(debug_assertions)]
use atm_sync::atomic::{AtomicU64, Ordering};

/// Read accesses held in a fixed stack array on the sampled key path; more
/// than this many read arguments falls back to heap-allocated guard vectors.
const INLINE_READS: usize = 8;

/// Reusable scratch for [`KeyGenerator::compute_with_scratch`]: every
/// heap-backed temporary the key pipeline needs, owned by the caller (the
/// engine keeps one per worker) so the steady-state lookup path performs no
/// allocation — the vectors reach their high-water capacity during warm-up
/// and are only cleared afterwards.
#[derive(Debug, Default)]
pub struct KeyScratch {
    /// Element range of each read access, in declaration order.
    ranges: Vec<std::ops::Range<usize>>,
    /// `(elements, elem_width)` of each read access.
    signature: LayoutSignature,
    /// Gather buffer for the mixed-precision path (the one place the bytes
    /// must be materialised: per-argument shuffles interleave arguments in
    /// an order no single pass over the regions can stream).
    bytes: Vec<u8>,
}

impl KeyScratch {
    /// Creates an empty scratch; capacity grows on first use.
    pub fn new() -> Self {
        KeyScratch::default()
    }

    /// Capacities of every backing vector, for steady-state alloc tracking
    /// (debug builds only — the release lookup path never inspects them).
    #[cfg(debug_assertions)]
    fn capacities(&self) -> (usize, usize, usize) {
        (
            self.ranges.capacity(),
            self.signature.capacity(),
            self.bytes.capacity(),
        )
    }
}

/// Shape of a task instance's inputs: `(elements, elem_width)` per read
/// access. Task types normally have a fixed shape, but the paper explicitly
/// supports input sizes that vary at execution time, so samplers are cached
/// per shape.
pub type LayoutSignature = Vec<(usize, usize)>;

/// Cache of per-argument samplers, keyed by the read-argument index and its
/// `(elements, elem_width)` shape.
type ArgSamplerCache = HashMap<(usize, (usize, usize)), Arc<InputSampler>>;

/// Per-task-type hash-key generator with cached shuffled index vectors.
///
/// Precision is a *vector*: every read access carries its own selection
/// percentage, which is how a [`MemoSpec`](atm_runtime::MemoSpec)'s
/// per-argument overrides reach the key pipeline (a small control argument
/// hashed exactly, a large field argument hashed at the trained `p`). When
/// every entry of the vector is equal — the default, override-free case —
/// the generator uses the exact same whole-layout shuffle as the original
/// single-`p` implementation, so default-spec keys are bit-identical to the
/// paper reproduction's.
#[derive(Debug)]
pub struct KeyGenerator {
    samplers: Mutex<HashMap<LayoutSignature, Arc<InputSampler>>>,
    /// Per-argument samplers for mixed-precision instances.
    arg_samplers: Mutex<ArgSamplerCache>,
    type_aware: bool,
    seed: u64,
    /// Debug-build odometer of allocation events on the key path: sampler
    /// construction, scratch capacity growth, and the rare spill past
    /// [`INLINE_READS`]. Steady state is *flat* — asserted by the
    /// `lookup_path_allocations_go_flat_after_warmup` test.
    #[cfg(debug_assertions)]
    alloc_events: AtomicU64,
}

impl KeyGenerator {
    /// Creates a generator for one task type. `seed` makes the index
    /// shuffle (and therefore the keys) reproducible; `type_aware` selects
    /// the significance-ordered byte selection of §III-C.
    pub fn new(seed: u64, type_aware: bool) -> Self {
        KeyGenerator {
            samplers: Mutex::new(HashMap::new()),
            arg_samplers: Mutex::new(HashMap::new()),
            type_aware,
            seed,
            #[cfg(debug_assertions)]
            alloc_events: AtomicU64::new(0),
        }
    }

    /// Number of allocation events the key path has recorded (debug builds
    /// only): sampler builds, scratch growth, inline-guard spills. A warm
    /// generator computing keys over known shapes keeps this flat.
    #[cfg(debug_assertions)]
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events.load(Ordering::Relaxed)
    }

    #[cfg(debug_assertions)]
    fn note_alloc(&self) {
        self.alloc_events.fetch_add(1, Ordering::Relaxed);
    }

    #[cfg(not(debug_assertions))]
    #[inline(always)]
    fn note_alloc(&self) {}

    /// Whether type-aware selection is enabled.
    pub fn is_type_aware(&self) -> bool {
        self.type_aware
    }

    /// Layout signature of a task instance (read accesses only).
    pub fn signature(store: &DataStore, accesses: &[Access]) -> LayoutSignature {
        accesses
            .iter()
            .filter(|a| a.mode.is_read())
            .map(|a| (elem_range_of(store, a).len(), a.elem.width()))
            .collect()
    }

    /// Computes the hash key of a task instance with one selection
    /// percentage per read access (in access-declaration order).
    ///
    /// # Panics
    /// Panics if `precisions` does not have exactly one entry per read
    /// access.
    pub fn compute(
        &self,
        store: &DataStore,
        accesses: &[Access],
        precisions: &[Percentage],
    ) -> KeyResult {
        let mut scratch = KeyScratch::new();
        self.compute_with_scratch(store, accesses, precisions, &mut scratch)
    }

    /// [`compute`](Self::compute) with caller-owned scratch: the hot-path
    /// variant the engine calls with its per-worker scratch, so the
    /// steady-state lookup performs no heap allocation. Results are
    /// bit-identical to `compute` — the scratch only changes *where* the
    /// temporaries live, never what is hashed.
    pub fn compute_with_scratch(
        &self,
        store: &DataStore,
        accesses: &[Access],
        precisions: &[Percentage],
        scratch: &mut KeyScratch,
    ) -> KeyResult {
        #[cfg(debug_assertions)]
        let caps_before = scratch.capacities();
        let result = self.compute_inner(store, accesses, precisions, scratch);
        #[cfg(debug_assertions)]
        if scratch.capacities() != caps_before {
            self.note_alloc();
        }
        result
    }

    fn compute_inner(
        &self,
        store: &DataStore,
        accesses: &[Access],
        precisions: &[Percentage],
        scratch: &mut KeyScratch,
    ) -> KeyResult {
        scratch.ranges.clear();
        scratch.signature.clear();
        let mut total_bytes = 0usize;
        for a in accesses.iter().filter(|a| a.mode.is_read()) {
            let range = elem_range_of(store, a);
            let width = a.elem.width();
            total_bytes += range.len() * width;
            scratch.signature.push((range.len(), width));
            scratch.ranges.push(range);
        }
        assert_eq!(
            precisions.len(),
            scratch.ranges.len(),
            "one precision per read access: got {} precisions for {} reads",
            precisions.len(),
            scratch.ranges.len()
        );

        if total_bytes == 0 {
            return KeyResult {
                key: jenkins_hash64(&[], self.seed),
                selected_bytes: 0,
                total_bytes: 0,
            };
        }

        // The uniform case (no per-argument overrides) goes through the
        // whole-layout shuffle, bit-identical to the single-`p` pipeline.
        if precisions.windows(2).all(|w| w[0] == w[1]) {
            return self.compute_uniform_inner(
                store,
                accesses,
                total_bytes,
                precisions[0],
                scratch,
            );
        }

        // Mixed precision: gather per argument — full segments contiguously,
        // sampled segments through a per-argument significance shuffle. This
        // is the one path that materialises bytes, into the reused scratch.
        scratch.bytes.clear();
        let buf = &mut scratch.bytes;
        for (j, (access, &p)) in accesses
            .iter()
            .filter(|a| a.mode.is_read())
            .zip(precisions)
            .enumerate()
        {
            let (elements, width) = scratch.signature[j];
            if elements == 0 {
                continue;
            }
            let range = scratch.ranges[j].clone();
            let region = store.read(access.region);
            let guard = region.lock();
            if p.is_full() {
                guard.with_bytes_in_elem_range(range, |bytes| buf.extend_from_slice(bytes));
                continue;
            }
            let sampler = self.arg_sampler_for(j, (elements, width));
            let base_byte = range.start * width;
            for &flat in sampler.selected_indices(p) {
                buf.push(guard.byte_at(base_byte + flat as usize));
            }
        }
        KeyResult {
            key: jenkins_hash64(buf, self.seed),
            selected_bytes: buf.len(),
            total_bytes,
        }
    }

    /// Computes the hash key with one uniform selection percentage over all
    /// read accesses (the override-free fast path; also convenient for
    /// benchmarks and tests).
    pub fn compute_uniform(
        &self,
        store: &DataStore,
        accesses: &[Access],
        p: Percentage,
    ) -> KeyResult {
        let reads = accesses.iter().filter(|a| a.mode.is_read()).count();
        self.compute(store, accesses, &vec![p; reads])
    }

    /// Uniform-precision key: streams every selected byte straight through
    /// the Jenkins block hasher — no gather buffer exists on this path.
    fn compute_uniform_inner(
        &self,
        store: &DataStore,
        accesses: &[Access],
        total_bytes: usize,
        p: Percentage,
        scratch: &mut KeyScratch,
    ) -> KeyResult {
        // Full selection (exact memoization): stream the inputs through the
        // hasher segment by segment, one region guard live at a time.
        if p.is_full() {
            let mut stream = JenkinsStream::new(self.seed, total_bytes);
            for (access, range) in accesses
                .iter()
                .filter(|a| a.mode.is_read())
                .zip(&scratch.ranges)
            {
                let region = store.read(access.region);
                let guard = region.lock();
                guard.with_bytes_in_elem_range(range.clone(), |bytes| stream.push_slice(bytes));
            }
            return KeyResult {
                key: stream.finish(),
                selected_bytes: total_bytes,
                total_bytes,
            };
        }

        let sampler = self.sampler_for(&scratch.signature);
        let selected = sampler.selected_indices(p);
        let layout = sampler.layout();

        // The shuffle visits bytes across *all* segments in selection order,
        // so every read region must be locked at once. Up to INLINE_READS
        // regions the handles and guards live on the stack; beyond that we
        // spill to vectors (a counted allocation event).
        let reads_len = scratch.ranges.len();
        let mut stream = JenkinsStream::new(self.seed, selected.len());
        if reads_len <= INLINE_READS {
            let mut handles: [Option<RegionReadGuard<'_>>; INLINE_READS] = Default::default();
            for (j, access) in accesses
                .iter()
                .filter(|a| a.mode.is_read())
                .enumerate()
                .take(INLINE_READS)
            {
                handles[j] = Some(store.read(access.region));
            }
            let mut guards: [Option<RwLockReadGuard<'_, RegionData>>; INLINE_READS] =
                Default::default();
            for (j, handle) in handles.iter().enumerate().take(reads_len) {
                guards[j] = Some(handle.as_ref().expect("handle filled above").lock());
            }
            for &flat in selected {
                let (segment, offset) = layout.locate(flat as usize);
                let (_, width) = scratch.signature[segment];
                let base_byte = scratch.ranges[segment].start * width;
                let guard = guards[segment].as_ref().expect("guard filled above");
                stream.push(guard.byte_at(base_byte + offset));
            }
        } else {
            self.note_alloc();
            let handles: Vec<_> = accesses
                .iter()
                .filter(|a| a.mode.is_read())
                .map(|a| store.read(a.region))
                .collect();
            let guards: Vec<_> = handles.iter().map(|h| h.lock()).collect();
            for &flat in selected {
                let (segment, offset) = layout.locate(flat as usize);
                let (_, width) = scratch.signature[segment];
                let base_byte = scratch.ranges[segment].start * width;
                stream.push(guards[segment].byte_at(base_byte + offset));
            }
        }
        KeyResult {
            key: stream.finish(),
            selected_bytes: selected.len(),
            total_bytes,
        }
    }

    /// Memory held by the cached index vectors (Table III accounting).
    pub fn memory_bytes(&self) -> usize {
        let whole: usize = self
            .samplers
            .lock()
            .values()
            .map(|s| s.memory_bytes())
            .sum();
        let per_arg: usize = self
            .arg_samplers
            .lock()
            .values()
            .map(|s| s.memory_bytes())
            .sum();
        whole + per_arg
    }

    fn sampler_for(&self, signature: &LayoutSignature) -> Arc<InputSampler> {
        let mut samplers = self.samplers.lock();
        if let Some(existing) = samplers.get(signature) {
            return Arc::clone(existing);
        }
        let layout = ByteLayout::new(
            signature
                .iter()
                .map(|&(elements, elem_width)| InputSpec {
                    elements,
                    elem_width,
                })
                .collect(),
        );
        let sampler = Arc::new(InputSampler::new(layout, self.type_aware, self.seed));
        samplers.insert(signature.clone(), Arc::clone(&sampler));
        self.note_alloc();
        sampler
    }

    /// Sampler over a single argument's bytes, for mixed-precision
    /// instances. The shuffle seed mixes in the argument index so two
    /// same-shaped arguments do not share a selection pattern.
    fn arg_sampler_for(&self, arg: usize, shape: (usize, usize)) -> Arc<InputSampler> {
        let mut samplers = self.arg_samplers.lock();
        if let Some(existing) = samplers.get(&(arg, shape)) {
            return Arc::clone(existing);
        }
        let layout = ByteLayout::new(vec![InputSpec {
            elements: shape.0,
            elem_width: shape.1,
        }]);
        let seed = self.seed ^ (arg as u64 + 1).wrapping_mul(0xD6E8_FEB8_6659_FD93);
        let sampler = Arc::new(InputSampler::new(layout, self.type_aware, seed));
        samplers.insert((arg, shape), Arc::clone(&sampler));
        self.note_alloc();
        sampler
    }
}

/// Result of one key computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyResult {
    /// The 8-byte Jenkins key.
    pub key: u64,
    /// Number of input bytes selected and hashed.
    pub selected_bytes: usize,
    /// Total number of input bytes of the task.
    pub total_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_runtime::Region;

    fn store_with_f32(values: &[f32]) -> (DataStore, Region<f32>) {
        let store = DataStore::new();
        let id = store.register_typed("in", values.to_vec()).unwrap();
        (store, id)
    }

    #[test]
    fn identical_inputs_give_identical_keys_and_changed_inputs_differ() {
        let (store, region) = store_with_f32(&[1.0, 2.0, 3.0, 4.0]);
        let keygen = KeyGenerator::new(1, true);
        let accesses = vec![Access::read(&region)];
        let k1 = keygen.compute_uniform(&store, &accesses, Percentage::FULL);
        let k2 = keygen.compute_uniform(&store, &accesses, Percentage::FULL);
        assert_eq!(k1, k2);
        assert_eq!(k1.total_bytes, 16);
        assert_eq!(k1.selected_bytes, 16);

        store.write(region).lock().as_f32_mut()[2] = 3.5;
        let k3 = keygen.compute_uniform(&store, &accesses, Percentage::FULL);
        assert_ne!(k1.key, k3.key);
    }

    #[test]
    fn sampled_key_matches_between_instances_with_equal_selected_bytes() {
        // Two different regions with data that agrees on the high-order
        // bytes but differs in the low mantissa bits: a small p with
        // type-aware selection must produce the same key for both.
        let store = DataStore::new();
        let a = store
            .register_typed("a", (0..64).map(|i| 1.0 + i as f32).collect::<Vec<_>>())
            .unwrap();
        let b_data: Vec<f32> = (0..64)
            .map(|i| f32::from_bits((1.0f32 + i as f32).to_bits() ^ 0x1))
            .collect();
        let b = store.register_typed("b", b_data).unwrap();
        let keygen = KeyGenerator::new(3, true);
        let p = Percentage::from_fraction(0.25);
        let ka = keygen.compute_uniform(&store, &[Access::read(&a)], p);
        let kb = keygen.compute_uniform(&store, &[Access::read(&b)], p);
        assert_eq!(ka.key, kb.key);
        assert_eq!(ka.selected_bytes, 64);
    }

    #[test]
    fn ranged_accesses_hash_only_their_window() {
        let store = DataStore::new();
        let region = store
            .register_typed("m", (0..32).map(f64::from).collect::<Vec<_>>())
            .unwrap();
        let keygen = KeyGenerator::new(9, false);
        let first_half = vec![Access::read(&region).with_range(0..128)];
        let second_half = vec![Access::read(&region).with_range(128..256)];
        let k1 = keygen.compute_uniform(&store, &first_half, Percentage::FULL);
        let k2 = keygen.compute_uniform(&store, &second_half, Percentage::FULL);
        assert_ne!(k1.key, k2.key);
        assert_eq!(k1.total_bytes, 128);

        // Changing data outside the window must not change the key.
        store.write(region).lock().as_f64_mut()[20] = 99.0;
        let k1_again = keygen.compute_uniform(&store, &first_half, Percentage::FULL);
        assert_eq!(k1.key, k1_again.key);
    }

    #[test]
    fn write_only_accesses_do_not_contribute_to_the_key() {
        let store = DataStore::new();
        let input = store.register_typed("in", vec![1.0f32, 2.0]).unwrap();
        let output = store.register_zeros::<f32>("out", 2).unwrap();
        let keygen = KeyGenerator::new(5, true);
        let accesses = vec![Access::read(&input), Access::write(&output)];
        let k1 = keygen.compute_uniform(&store, &accesses, Percentage::FULL);
        store.write(output).lock().as_f32_mut()[0] = 7.0;
        let k2 = keygen.compute_uniform(&store, &accesses, Percentage::FULL);
        assert_eq!(k1.key, k2.key, "outputs must not affect the key");
    }

    #[test]
    fn sampled_and_full_keys_use_the_same_generator_consistently() {
        let (store, region) = store_with_f32(&[5.0; 1024]);
        let keygen = KeyGenerator::new(11, true);
        let accesses = vec![Access::read(&region)];
        let p = Percentage::from_training_step(3);
        let k_small = keygen.compute_uniform(&store, &accesses, p);
        assert_eq!(k_small.selected_bytes, p.bytes_of(4096));
        assert!(k_small.selected_bytes < k_small.total_bytes);
        // Deterministic across calls.
        assert_eq!(keygen.compute_uniform(&store, &accesses, p), k_small);
    }

    #[test]
    fn different_shapes_get_their_own_samplers() {
        let store = DataStore::new();
        let big = store.register_zeros::<f32>("big", 128).unwrap();
        let small = store.register_zeros::<f32>("small", 16).unwrap();
        let keygen = KeyGenerator::new(2, true);
        let p = Percentage::from_fraction(0.5);
        let _ = keygen.compute_uniform(&store, &[Access::read(&big)], p);
        let _ = keygen.compute_uniform(&store, &[Access::read(&small)], p);
        assert_eq!(keygen.samplers.lock().len(), 2);
        assert_eq!(keygen.memory_bytes(), (128 * 4 + 16 * 4) * 4);
    }

    #[test]
    fn mixed_precision_hashes_exact_arguments_fully() {
        // Argument 0 is a tiny control argument hashed exactly; argument 1
        // is a large field argument hashed at a small p. Changing any byte
        // of the control argument must change the key, even though the
        // type-wide p would almost never select its bytes.
        let store = DataStore::new();
        let control = store.register_typed("control", vec![7i32, 9]).unwrap();
        let field = store.register_typed("field", vec![1.0f32; 4096]).unwrap();
        let out = store.register_zeros::<f32>("out", 1).unwrap();
        let accesses = vec![
            Access::read(&control),
            Access::read(&field),
            Access::write(&out),
        ];
        let keygen = KeyGenerator::new(21, true);
        let precisions = [Percentage::FULL, Percentage::MIN];
        let k1 = keygen.compute(&store, &accesses, &precisions);
        assert_eq!(keygen.compute(&store, &accesses, &precisions), k1);
        // 8 control bytes + MIN of 16 KiB (at least 1 byte).
        assert_eq!(
            k1.selected_bytes,
            8 + Percentage::MIN.bytes_of(4096 * 4),
            "the exact argument contributes every byte"
        );

        // A low-significance flip in the control argument flips the key…
        store.write(control).lock().as_i32_mut()[1] = 10;
        let k2 = keygen.compute(&store, &accesses, &precisions);
        assert_ne!(k1.key, k2.key, "exact argument must be fully sensitive");

        // …while a low-mantissa flip in the field argument does not (those
        // bytes are the last the significance-ordered shuffle would select).
        store.write(field).lock().as_f32_mut()[17] = f32::from_bits(1.0f32.to_bits() ^ 0x1);
        let k3 = keygen.compute(&store, &accesses, &precisions);
        assert_eq!(
            k2.key, k3.key,
            "approximate argument tolerates low-significance noise"
        );
    }

    #[test]
    fn uniform_vector_matches_the_single_p_pipeline_bit_for_bit() {
        let store = DataStore::new();
        let a = store.register_typed("a", vec![3.5f64; 512]).unwrap();
        let b = store.register_typed("b", vec![-1.25f64; 64]).unwrap();
        let accesses = vec![Access::read(&a), Access::read(&b)];
        let keygen = KeyGenerator::new(13, true);
        for step in [0usize, 4, 9, 15] {
            let p = Percentage::from_training_step(step);
            let uniform = keygen.compute_uniform(&store, &accesses, p);
            let vector = keygen.compute(&store, &accesses, &[p, p]);
            assert_eq!(uniform, vector, "step {step}");
        }
    }

    #[test]
    #[should_panic(expected = "one precision per read access")]
    fn precision_vector_arity_is_checked() {
        let (store, region) = store_with_f32(&[1.0, 2.0]);
        let keygen = KeyGenerator::new(1, true);
        let _ = keygen.compute(
            &store,
            &[Access::read(&region)],
            &[Percentage::FULL, Percentage::FULL],
        );
    }

    /// Property (satellite of the MemoSpec redesign): key selection is
    /// *monotone in precision*. The selected byte set at precision `p` is a
    /// superset of the set at any `p' < p` (a prefix of the same shuffled
    /// index vector), so two inputs whose keys collide at `p` must also
    /// collide at every smaller `p'`.
    #[test]
    fn key_collisions_are_monotone_in_precision() {
        use atm_hash::Xoshiro256StarStar;
        const CASES: usize = 24;
        const ELEMS: usize = 256;
        let mut rng = Xoshiro256StarStar::new(0xC0111D);
        for case in 0..CASES {
            let store = DataStore::new();
            // Input `a` is random; input `b` agrees with `a` except for a
            // random set of low-mantissa bit flips, so the pair collides at
            // small p and (usually) separates as p grows.
            let a_data: Vec<f32> = (0..ELEMS)
                .map(|_| (rng.next_f32() - 0.5) * 1000.0)
                .collect();
            let b_data: Vec<f32> = a_data
                .iter()
                .map(|&v| {
                    if rng.below(4) == 0 {
                        f32::from_bits(v.to_bits() ^ (1u32 << rng.below(10)))
                    } else {
                        v
                    }
                })
                .collect();
            let a = store.register_typed(format!("a{case}"), a_data).unwrap();
            let b = store.register_typed(format!("b{case}"), b_data).unwrap();
            let keygen = KeyGenerator::new(rng.next_u64(), true);

            let keys_at = |accesses: &[Access], step: usize| {
                keygen
                    .compute_uniform(&store, accesses, Percentage::from_training_step(step))
                    .key
            };
            let acc_a = vec![Access::read(&a)];
            let acc_b = vec![Access::read(&b)];
            let collides: Vec<bool> = (0..=Percentage::STEPS)
                .map(|step| keys_at(&acc_a, step) == keys_at(&acc_b, step))
                .collect();
            for hi in 0..collides.len() {
                if collides[hi] {
                    for (lo, &collides_lo) in collides.iter().enumerate().take(hi) {
                        assert!(
                            collides_lo,
                            "case {case}: keys collide at step {hi} but not at \
                             smaller step {lo} — selection is not monotone"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_and_plain_compute_agree_on_every_path() {
        // `compute_with_scratch` must be bit-identical to `compute` on the
        // uniform-full, uniform-sampled and mixed-precision paths alike.
        let store = DataStore::new();
        let a = store.register_typed("a", vec![1.5f32; 300]).unwrap();
        let b = store.register_typed("b", vec![9i64; 40]).unwrap();
        let accesses = vec![Access::read(&a), Access::read(&b)];
        let keygen = KeyGenerator::new(77, true);
        let mut scratch = KeyScratch::new();
        let cases: Vec<Vec<Percentage>> = vec![
            vec![Percentage::FULL, Percentage::FULL],
            vec![
                Percentage::from_fraction(0.25),
                Percentage::from_fraction(0.25),
            ],
            vec![Percentage::MIN, Percentage::MIN],
            vec![Percentage::FULL, Percentage::MIN],
            vec![Percentage::from_fraction(0.5), Percentage::FULL],
        ];
        for precisions in &cases {
            let plain = keygen.compute(&store, &accesses, precisions);
            let scratched =
                keygen.compute_with_scratch(&store, &accesses, precisions, &mut scratch);
            assert_eq!(plain, scratched, "precisions {precisions:?}");
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    fn lookup_path_allocations_go_flat_after_warmup() {
        // The zero-steady-state-allocation claim: once the samplers are
        // built and the per-worker scratch has reached its high-water
        // capacity, repeated key computations record no further allocation
        // events — on the uniform paths and the mixed gather path alike.
        let store = DataStore::new();
        let a = store.register_typed("a", vec![2.5f32; 512]).unwrap();
        let b = store.register_typed("b", vec![3i32; 128]).unwrap();
        let accesses = vec![Access::read(&a), Access::read(&b)];
        let keygen = KeyGenerator::new(5, true);
        let mut scratch = KeyScratch::new();
        let uniform = [Percentage::from_fraction(0.25); 2];
        let full = [Percentage::FULL; 2];
        let mixed = [Percentage::FULL, Percentage::MIN];
        for _ in 0..3 {
            let _ = keygen.compute_with_scratch(&store, &accesses, &uniform, &mut scratch);
            let _ = keygen.compute_with_scratch(&store, &accesses, &full, &mut scratch);
            let _ = keygen.compute_with_scratch(&store, &accesses, &mixed, &mut scratch);
        }
        let warmed = keygen.alloc_events();
        for _ in 0..1_000 {
            let _ = keygen.compute_with_scratch(&store, &accesses, &uniform, &mut scratch);
            let _ = keygen.compute_with_scratch(&store, &accesses, &full, &mut scratch);
            let _ = keygen.compute_with_scratch(&store, &accesses, &mixed, &mut scratch);
        }
        assert_eq!(
            keygen.alloc_events(),
            warmed,
            "steady-state lookups must not allocate"
        );
    }

    #[test]
    fn empty_inputs_produce_a_stable_key() {
        let store = DataStore::new();
        let out = store.register_zeros::<f32>("out", 1).unwrap();
        let keygen = KeyGenerator::new(1, true);
        let accesses = vec![Access::write(&out)];
        let k1 = keygen.compute_uniform(&store, &accesses, Percentage::FULL);
        let k2 = keygen.compute_uniform(&store, &accesses, Percentage::MIN);
        assert_eq!(k1.key, k2.key);
        assert_eq!(k1.total_bytes, 0);
    }
}
