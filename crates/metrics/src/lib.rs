//! Correctness and performance metrics for the ATM evaluation.
//!
//! The paper defines (§III-D and §IV-C):
//!
//! * the **Chebyshev relative error** τ (Eq. 1), used *per task* by the
//!   Dynamic ATM training phase because it does not accumulate floating
//!   point values and correlates well with overall program accuracy;
//! * the **speedup** (Eq. 2), always measured against a no-ATM run with the
//!   same number of cores;
//! * the **Euclidean relative error** Er (Eq. 3), used for the overall
//!   program correctness of vector/matrix outputs;
//! * the **LU residual** `|A − L·U|² / |A|²` (Eq. 4), the application
//!   specific correctness of the Sparse LU benchmark;
//! * **reuse**, the percentage of tasks memoized by ATM.

#![warn(missing_docs)]

pub mod correctness;
pub mod summary;

pub use correctness::{
    chebyshev_relative_error, correctness_percent, euclidean_relative_error, lu_residual_error,
    max_ulp_error, max_ulp_error_f32, rel_l2_error,
};
pub use summary::{geometric_mean, reuse_percent, speedup, Speedup};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_reexports_are_usable() {
        assert!((speedup(2.0, 1.0).factor() - 2.0).abs() < 1e-12);
        assert_eq!(correctness_percent(0.0), 100.0);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }
}
