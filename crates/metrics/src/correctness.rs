//! Error metrics: Chebyshev (per-task), Euclidean (whole program), LU residual.

/// Chebyshev relative error τ between a correct output vector and the
/// ATM-approximated output vector (Eq. 1 of the paper):
///
/// ```text
/// τ = max_i |correct_i − atm_i| / max_i |correct_i|
/// ```
///
/// The reduction is a maximum rather than a sum, so it does not suffer the
/// floating-point accumulation issues of the Euclidean metric; the paper
/// found it to correlate much better with overall program correctness and
/// uses it as the per-task acceptance test during the Dynamic ATM training
/// phase (`τ < τ_max`).
///
/// Edge cases: if both vectors are all zero the error is 0; if the correct
/// vector is all zero but the approximation is not, the error is infinite.
///
/// # Panics
/// Panics if the two slices have different lengths.
pub fn chebyshev_relative_error(correct: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(
        correct.len(),
        approx.len(),
        "Chebyshev error requires vectors of equal length ({} vs {})",
        correct.len(),
        approx.len()
    );
    let mut max_abs_diff = 0.0f64;
    let mut max_abs_correct = 0.0f64;
    for (&c, &a) in correct.iter().zip(approx) {
        max_abs_diff = max_abs_diff.max((c - a).abs());
        max_abs_correct = max_abs_correct.max(c.abs());
    }
    if max_abs_diff == 0.0 {
        0.0
    } else if max_abs_correct == 0.0 {
        f64::INFINITY
    } else {
        max_abs_diff / max_abs_correct
    }
}

/// Euclidean relative error Er between the correct program output and the
/// ATM output (Eq. 3 of the paper):
///
/// ```text
/// Er = Σ_i (correct_i − atm_i)² / Σ_i correct_i²
/// ```
///
/// Used for the whole-program correctness reported in Figures 4 and 5.
///
/// # Panics
/// Panics if the two slices have different lengths.
pub fn euclidean_relative_error(correct: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(
        correct.len(),
        approx.len(),
        "Euclidean error requires vectors of equal length ({} vs {})",
        correct.len(),
        approx.len()
    );
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (&c, &a) in correct.iter().zip(approx) {
        let d = c - a;
        num += d * d;
        den += c * c;
    }
    if num == 0.0 {
        0.0
    } else if den == 0.0 {
        f64::INFINITY
    } else {
        num / den
    }
}

/// Relative L2 (Euclidean-norm) error between a correct output vector and
/// an approximated one:
///
/// ```text
/// Er = ‖correct − approx‖₂ / ‖correct‖₂
/// ```
///
/// This is the square root of [`euclidean_relative_error`] (which the paper
/// defines on *squared* norms): a norm-scale threshold is often easier for
/// programmers to reason about when declaring a per-task-type `τ_max`, so it
/// is offered as a selectable training metric next to the paper-default
/// Chebyshev error.
///
/// Edge cases match [`euclidean_relative_error`]: identical vectors give 0,
/// a zero correct vector with a non-zero approximation gives infinity.
///
/// # Panics
/// Panics if the two slices have different lengths.
pub fn rel_l2_error(correct: &[f64], approx: &[f64]) -> f64 {
    euclidean_relative_error(correct, approx).sqrt()
}

/// Monotone map from an `f64` bit pattern to the unsigned number line, such
/// that adjacent representable floats map to adjacent integers (the standard
/// total-order trick: flip all bits of negatives, flip the sign bit of
/// non-negatives).
fn monotone_bits(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | 0x8000_0000_0000_0000
    }
}

/// Maximum units-in-last-place distance between a correct output vector and
/// an approximated one:
///
/// ```text
/// τ = max_i ulp_distance(correct_i, approx_i)
/// ```
///
/// ULP distance is the number of representable `f64` values between the two
/// operands (0 for bit-identical values, 1 for adjacent floats, …). Unlike
/// the relative-error metrics it is meaningful near zero and across
/// magnitudes, which suits kernels whose outputs must stay bit-stable up to
/// rounding. When used as a training metric, `τ_max` is a ULP *count*, not
/// a relative error.
///
/// Any NaN on either side yields infinity (a NaN output never counts as a
/// correct approximation).
///
/// # Panics
/// Panics if the two slices have different lengths.
pub fn max_ulp_error(correct: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(
        correct.len(),
        approx.len(),
        "ULP error requires vectors of equal length ({} vs {})",
        correct.len(),
        approx.len()
    );
    let mut max_ulps = 0u64;
    for (&c, &a) in correct.iter().zip(approx) {
        if c.is_nan() || a.is_nan() {
            return f64::INFINITY;
        }
        max_ulps = max_ulps.max(monotone_bits(c).abs_diff(monotone_bits(a)));
    }
    max_ulps as f64
}

/// Monotone map from an `f32` bit pattern to the unsigned number line (the
/// 32-bit analogue of [`monotone_bits`]): adjacent representable `f32`
/// values map to adjacent integers.
fn monotone_bits_f32(x: f32) -> u32 {
    let bits = x.to_bits();
    if bits >> 31 == 1 {
        !bits
    } else {
        bits | 0x8000_0000
    }
}

/// Maximum ULP distance between two `f32` vectors, **measured on the `f32`
/// grid**.
///
/// This is the native-width counterpart of [`max_ulp_error`]: one step
/// between adjacent `f32` values counts as 1 ULP. Converting the same
/// values to `f64` first and using the `f64` grid would inflate that single
/// step to 2²⁹ ULPs (the gap between consecutive `f32` values measured in
/// `f64` steps), which makes a ULP-count `τ_max` meaningless for `f32`
/// kernels — so f32 outputs must be judged here, on their own grid.
///
/// Any NaN on either side yields infinity.
///
/// # Panics
/// Panics if the two slices have different lengths.
pub fn max_ulp_error_f32(correct: &[f32], approx: &[f32]) -> f64 {
    assert_eq!(
        correct.len(),
        approx.len(),
        "ULP error requires vectors of equal length ({} vs {})",
        correct.len(),
        approx.len()
    );
    let mut max_ulps = 0u32;
    for (&c, &a) in correct.iter().zip(approx) {
        if c.is_nan() || a.is_nan() {
            return f64::INFINITY;
        }
        max_ulps = max_ulps.max(monotone_bits_f32(c).abs_diff(monotone_bits_f32(a)));
    }
    f64::from(max_ulps)
}

/// LU-specific relative residual (Eq. 4 of the paper):
///
/// ```text
/// Er = |A − L·U|² / |A|²
/// ```
///
/// `a` is the original matrix and `lu_product` is the reconstructed `L·U`,
/// both flattened row-major. This is simply the Euclidean relative error of
/// the reconstruction, provided for clarity at call sites.
pub fn lu_residual_error(a: &[f64], lu_product: &[f64]) -> f64 {
    euclidean_relative_error(a, lu_product)
}

/// Converts a relative error into the "Correctness (%)" scale of Figures 4
/// and 5: `100 · (1 − Er)`, clamped to `[0, 100]`.
pub fn correctness_percent(relative_error: f64) -> f64 {
    if !relative_error.is_finite() {
        return 0.0;
    }
    (100.0 * (1.0 - relative_error)).clamp(0.0, 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chebyshev_zero_for_identical_vectors() {
        let v = vec![1.0, -2.0, 3.5];
        assert_eq!(chebyshev_relative_error(&v, &v), 0.0);
    }

    #[test]
    fn chebyshev_matches_hand_computation() {
        let correct = [2.0, -4.0, 8.0];
        let approx = [2.0, -4.4, 8.2];
        // max diff = 0.4, max |correct| = 8 -> 0.05
        assert!((chebyshev_relative_error(&correct, &approx) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn chebyshev_infinite_when_correct_is_zero_but_approx_not() {
        assert!(chebyshev_relative_error(&[0.0, 0.0], &[0.0, 1.0]).is_infinite());
        assert_eq!(chebyshev_relative_error(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn chebyshev_is_scale_invariant() {
        let correct = [1.0, 2.0, 3.0];
        let approx = [1.1, 2.0, 3.0];
        let scaled_c: Vec<f64> = correct.iter().map(|x| x * 1000.0).collect();
        let scaled_a: Vec<f64> = approx.iter().map(|x| x * 1000.0).collect();
        let e1 = chebyshev_relative_error(&correct, &approx);
        let e2 = chebyshev_relative_error(&scaled_c, &scaled_a);
        assert!((e1 - e2).abs() < 1e-12);
    }

    #[test]
    fn euclidean_matches_hand_computation() {
        let correct = [3.0, 4.0];
        let approx = [3.0, 5.0];
        // num = 1, den = 25 -> 0.04
        assert!((euclidean_relative_error(&correct, &approx) - 0.04).abs() < 1e-12);
    }

    #[test]
    fn euclidean_zero_and_infinite_edge_cases() {
        assert_eq!(euclidean_relative_error(&[], &[]), 0.0);
        assert_eq!(euclidean_relative_error(&[1.0], &[1.0]), 0.0);
        assert!(euclidean_relative_error(&[0.0], &[2.0]).is_infinite());
    }

    #[test]
    fn lu_residual_is_euclidean_of_reconstruction() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let lu = [1.0, 2.0, 3.0, 4.5];
        assert_eq!(
            lu_residual_error(&a, &lu),
            euclidean_relative_error(&a, &lu)
        );
    }

    #[test]
    fn correctness_percent_clamps() {
        assert_eq!(correctness_percent(0.0), 100.0);
        assert!((correctness_percent(0.05) - 95.0).abs() < 1e-9);
        assert_eq!(correctness_percent(2.0), 0.0);
        assert_eq!(correctness_percent(f64::INFINITY), 0.0);
        assert_eq!(correctness_percent(f64::NAN), 0.0);
    }

    #[test]
    fn rel_l2_is_the_root_of_the_squared_norm_ratio() {
        let correct = [3.0, 4.0];
        let approx = [3.0, 5.0];
        // squared ratio = 0.04 -> norm ratio = 0.2
        assert!((rel_l2_error(&correct, &approx) - 0.2).abs() < 1e-12);
        assert_eq!(rel_l2_error(&correct, &correct), 0.0);
        assert!(rel_l2_error(&[0.0], &[1.0]).is_infinite());
    }

    #[test]
    fn max_ulp_counts_representable_steps() {
        let x = 1.0f64;
        let next = f64::from_bits(x.to_bits() + 1);
        let next3 = f64::from_bits(x.to_bits() + 3);
        assert_eq!(max_ulp_error(&[x, x], &[x, x]), 0.0);
        assert_eq!(max_ulp_error(&[x], &[next]), 1.0);
        assert_eq!(max_ulp_error(&[x, x], &[next, next3]), 3.0);
    }

    #[test]
    fn max_ulp_is_continuous_across_zero_and_rejects_nan() {
        // -0.0 and +0.0 are adjacent on the monotone scale.
        assert_eq!(max_ulp_error(&[-0.0], &[0.0]), 1.0);
        let tiny = f64::from_bits(1); // smallest positive subnormal
        assert_eq!(max_ulp_error(&[0.0], &[tiny]), 1.0);
        assert_eq!(max_ulp_error(&[-tiny], &[tiny]), 3.0);
        assert!(max_ulp_error(&[f64::NAN], &[1.0]).is_infinite());
        assert!(max_ulp_error(&[1.0], &[f64::NAN]).is_infinite());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn max_ulp_length_mismatch_panics() {
        let _ = max_ulp_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn f32_ulp_is_counted_on_the_f32_grid() {
        let x = 1.0f32;
        let next = f32::from_bits(x.to_bits() + 1);
        assert_eq!(max_ulp_error_f32(&[x], &[x]), 0.0);
        assert_eq!(max_ulp_error_f32(&[x], &[next]), 1.0);
        assert_eq!(max_ulp_error_f32(&[-0.0], &[0.0]), 1.0);
        assert!(max_ulp_error_f32(&[f32::NAN], &[1.0]).is_infinite());
    }

    /// The divergence that motivates the native metric: one f32 ULP becomes
    /// 2²⁹ f64 ULPs after conversion, because consecutive f32 values are
    /// 2²⁹ f64 steps apart.
    #[test]
    fn f32_and_f64_grids_diverge_after_conversion() {
        let x = 1.0f32;
        let next = f32::from_bits(x.to_bits() + 1);
        assert_eq!(max_ulp_error_f32(&[x], &[next]), 1.0);
        let converted = max_ulp_error(&[f64::from(x)], &[f64::from(next)]);
        assert_eq!(converted, (1u64 << 29) as f64);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn f32_ulp_length_mismatch_panics() {
        let _ = max_ulp_error_f32(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn chebyshev_length_mismatch_panics() {
        let _ = chebyshev_relative_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn euclidean_length_mismatch_panics() {
        let _ = euclidean_relative_error(&[1.0, 2.0], &[1.0]);
    }
}
