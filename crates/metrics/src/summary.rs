//! Performance summary metrics: speedup, reuse, geometric mean.

/// A speedup value with its constituent execution times, as defined by
/// Eq. 2 of the paper: `speedup = T_no_ATM / T_ATM`, both measured with the
/// same number of cores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Speedup {
    /// Execution time of the baseline (without ATM), in seconds.
    pub baseline_seconds: f64,
    /// Execution time with ATM enabled, in seconds.
    pub atm_seconds: f64,
}

impl Speedup {
    /// The speedup factor `baseline / atm`.
    pub fn factor(&self) -> f64 {
        if self.atm_seconds <= 0.0 {
            return f64::INFINITY;
        }
        self.baseline_seconds / self.atm_seconds
    }

    /// True when ATM made the program slower (factor below 1).
    pub fn is_slowdown(&self) -> bool {
        self.factor() < 1.0
    }
}

/// Builds a [`Speedup`] from a baseline time and an ATM time (seconds).
pub fn speedup(baseline_seconds: f64, atm_seconds: f64) -> Speedup {
    Speedup {
        baseline_seconds,
        atm_seconds,
    }
}

/// Percentage of tasks that were memoized (bypassed) by ATM out of all the
/// tasks of the memoized task type: the paper's "reuse" metric (§IV-C).
pub fn reuse_percent(memoized_tasks: u64, total_tasks: u64) -> f64 {
    if total_tasks == 0 {
        return 0.0;
    }
    100.0 * memoized_tasks as f64 / total_tasks as f64
}

/// Geometric mean of a set of positive values (used for the "geomean" bars
/// of Figures 3, 4 and 6).
///
/// Returns `NaN` for an empty slice and panics on non-positive values,
/// which would indicate a measurement bug.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut log_sum = 0.0f64;
    for &v in values {
        assert!(v > 0.0, "geometric mean requires positive values, got {v}");
        log_sum += v.ln();
    }
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_factor_and_slowdown_detection() {
        assert!((speedup(10.0, 5.0).factor() - 2.0).abs() < 1e-12);
        assert!(!speedup(10.0, 5.0).is_slowdown());
        assert!(speedup(5.0, 10.0).is_slowdown());
        assert!(speedup(1.0, 0.0).factor().is_infinite());
    }

    #[test]
    fn reuse_percent_basics() {
        assert_eq!(reuse_percent(0, 0), 0.0);
        assert_eq!(reuse_percent(0, 10), 0.0);
        assert_eq!(reuse_percent(5, 10), 50.0);
        assert_eq!(reuse_percent(10, 10), 100.0);
    }

    #[test]
    fn geometric_mean_matches_hand_computation() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_nan());
    }

    #[test]
    fn geometric_mean_is_between_min_and_max() {
        let vals = [0.5, 1.4, 2.5, 8.8, 1.07];
        let g = geometric_mean(&vals);
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(g >= min && g <= max);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn geometric_mean_rejects_non_positive() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }
}
