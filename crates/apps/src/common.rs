//! Common infrastructure shared by the six benchmark applications.
//!
//! Every application provides:
//!
//! * a deterministic **workload generator** reproducing the redundancy
//!   sources described in §V-D of the paper (repetitive program inputs,
//!   algorithmic convergence, saturated random initialisation);
//! * a **sequential reference** implementation used both as the correctness
//!   baseline and to validate the taskified version;
//! * a **taskified version** built on [`atm_runtime`], with the
//!   paper's memoized task type opted into ATM through the task-type
//!   annotations (Table I / Table II);
//! * a **correctness metric** on the program output (Table I, "Correctness
//!   measured on").

use atm_core::{
    AtmConfig, AtmEngine, AtmMode, AtmStatsSnapshot, MemoSpec, ReuseEvent, StoreCountersSnapshot,
    TypeSummary,
};
use atm_metrics::{correctness_percent, euclidean_relative_error};
use atm_obs::{DecisionSnapshot, MetricsSnapshot, Observability};
use atm_runtime::{
    QueueMode, Runtime, RuntimeBuilder, RuntimeStatsSnapshot, TaskTypeId, TraceSummary, Tracer,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Problem-size scale of a benchmark instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Very small problems for unit/integration tests (tens of milliseconds).
    Tiny,
    /// The default evaluation scale: large enough to show the ATM behaviour,
    /// small enough that the full harness runs on a laptop.
    Small,
    /// The paper's original problem sizes (documented for reference; running
    /// them requires several GiB of memory and long runtimes).
    Paper,
}

/// How a benchmark run should be executed.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Number of worker threads (the paper's "number of cores").
    pub workers: usize,
    /// ATM configuration (use [`AtmConfig::off`] for the baseline).
    pub atm: AtmConfig,
    /// Whether to record execution traces and ready-queue samples.
    pub tracing: bool,
    /// Whether to record latency histograms, memo-decision events and task
    /// spans (the [`atm_obs`] layer).
    pub observability: bool,
    /// Ready-queue discipline of the runtime ([`QueueMode::Stealing`] by
    /// default; [`QueueMode::Fifo`] reproduces the paper's single queue).
    pub queue_mode: QueueMode,
    /// Warm-start the memo store from this snapshot before any task runs.
    pub warm_start: Option<PathBuf>,
    /// Persist the memo store to this path after the run completes.
    pub store_save: Option<PathBuf>,
}

impl RunOptions {
    /// Baseline: no ATM, given number of workers.
    pub fn baseline(workers: usize) -> Self {
        RunOptions {
            workers,
            atm: AtmConfig::off(),
            tracing: false,
            observability: false,
            queue_mode: QueueMode::default(),
            warm_start: None,
            store_save: None,
        }
    }

    /// ATM-enabled run with the given configuration.
    pub fn with_atm(workers: usize, atm: AtmConfig) -> Self {
        RunOptions {
            workers,
            atm,
            tracing: false,
            observability: false,
            queue_mode: QueueMode::default(),
            warm_start: None,
            store_save: None,
        }
    }

    /// Enables tracing.
    #[must_use]
    pub fn traced(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Enables the observability layer (latency histograms, memo-decision
    /// events, task spans).
    #[must_use]
    pub fn observed(mut self) -> Self {
        self.observability = true;
        self
    }

    /// Selects the ready-queue discipline.
    #[must_use]
    pub fn queued(mut self, mode: QueueMode) -> Self {
        self.queue_mode = mode;
        self
    }

    /// Warm-starts the memo store from a snapshot of a previous run.
    #[must_use]
    pub fn warm_started(mut self, path: impl Into<PathBuf>) -> Self {
        self.warm_start = Some(path.into());
        self
    }

    /// Persists the memo store when the run finishes.
    #[must_use]
    pub fn saving_store(mut self, path: impl Into<PathBuf>) -> Self {
        self.store_save = Some(path.into());
        self
    }
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions::baseline(1)
    }
}

/// Result of one taskified benchmark run.
#[derive(Debug, Clone)]
pub struct AppRun {
    /// The program output the correctness metric is measured on.
    pub output: Vec<f64>,
    /// Wall-clock time of the parallel section (excludes input generation).
    pub wall: Duration,
    /// Runtime-level counters.
    pub runtime_stats: RuntimeStatsSnapshot,
    /// ATM engine counters.
    pub atm_stats: AtmStatsSnapshot,
    /// Memo-store counters (hits, misses, insertions, evictions, rejected
    /// admissions, resident bytes, saved kernel nanoseconds).
    pub store_counters: StoreCountersSnapshot,
    /// Per-task-type ATM summaries (chosen `p`, hits, phase).
    pub type_summaries: HashMap<TaskTypeId, TypeSummary>,
    /// Reuse provenance events (Figure 9).
    pub reuse_events: Vec<ReuseEvent>,
    /// ATM memory overhead in bytes (Table III numerator).
    pub atm_memory_bytes: usize,
    /// Application data footprint in bytes (Table III denominator).
    pub app_memory_bytes: usize,
    /// Trace summary, when tracing was enabled (Figure 7).
    pub trace: Option<TraceSummary>,
    /// Ready-queue depth samples, when tracing was enabled (Figure 8).
    pub ready_samples: Vec<atm_runtime::trace::ReadySample>,
    /// Latency histograms (empty unless observability was enabled).
    pub latency: MetricsSnapshot,
    /// Memo-decision audit trail (empty unless observability was enabled).
    pub decisions: DecisionSnapshot,
}

impl AppRun {
    /// The reuse metric of §IV-C over the memoizable tasks.
    pub fn reuse_percent(&self) -> f64 {
        self.atm_stats.reuse_percent()
    }

    /// ATM memory overhead relative to the application footprint (Table III).
    pub fn memory_overhead_percent(&self) -> f64 {
        if self.app_memory_bytes == 0 {
            return 0.0;
        }
        100.0 * self.atm_memory_bytes as f64 / self.app_memory_bytes as f64
    }
}

/// Table I row: static description of a benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct TableInfo {
    /// "Program Inputs" column.
    pub program_inputs: String,
    /// "Task Inputs Size (bytes)" column — input bytes of one memoized task.
    pub task_input_bytes: usize,
    /// "Task Inputs Types" column.
    pub task_input_types: String,
    /// "Memoized Task Type" column.
    pub memoized_task_type: String,
    /// "Number of tasks" column (tasks of the memoized type).
    pub num_tasks: u64,
    /// "Correctness Measured on" column.
    pub correctness_on: String,
}

/// The interface every benchmark application implements.
pub trait BenchmarkApp: Send + Sync {
    /// Benchmark name as used in the paper's tables and figures.
    fn name(&self) -> &'static str;

    /// Table I information for this instance.
    fn table_info(&self) -> TableInfo;

    /// The approximation policy of the benchmark's memoized task type: the
    /// paper's Table II parameters (`L_training`, `τ_max`) expressed as a
    /// per-type [`MemoSpec`], declared on the task type at registration.
    fn memo_spec(&self) -> MemoSpec;

    /// Runs the sequential reference and returns the correctness output.
    fn run_sequential(&self) -> Vec<f64>;

    /// Runs the taskified version under the given options.
    fn run_tasked(&self, options: &RunOptions) -> AppRun;

    /// Relative error of `output` against the exact result (Eq. 3, or Eq. 4
    /// for Sparse LU). The default compares against the cached sequential
    /// reference with the Euclidean relative error.
    fn output_error(&self, output: &[f64]) -> f64 {
        euclidean_relative_error(self.reference(), output)
    }

    /// The cached sequential reference output.
    fn reference(&self) -> &[f64];

    /// Correctness percentage of a run (Figures 4 and 5).
    fn correctness_percent(&self, output: &[f64]) -> f64 {
        correctness_percent(self.output_error(output))
    }
}

/// Helper holding everything a taskified run needs and producing an [`AppRun`].
///
/// Applications use it as:
/// ```ignore
/// let mut harness = TaskedRun::new(options);
/// // … register regions and task types through harness.runtime() …
/// let output = harness.finish(|store| collect_output(store));
/// ```
pub struct TaskedRun {
    runtime: Runtime,
    engine: Arc<AtmEngine>,
    started: Instant,
    store_save: Option<PathBuf>,
}

impl TaskedRun {
    /// Builds the runtime + ATM engine pair described by `options`. When the
    /// options carry a warm-start snapshot it is absorbed into the memo
    /// store before any task can run.
    pub fn new(options: &RunOptions) -> Self {
        let obs = Arc::new(Observability::new(options.observability));
        let engine = Arc::new(AtmEngine::new(options.atm).with_observability(Arc::clone(&obs)));
        if let Some(path) = &options.warm_start {
            // Warm start is an optimisation: a missing or corrupt snapshot
            // (e.g. the first-ever run) degrades to a cold start, it does
            // not abort the run.
            if let Err(err) = engine.warm_start_from(path) {
                eprintln!("warm start from {path:?} unavailable, starting cold: {err}");
            }
        }
        let runtime = RuntimeBuilder::new()
            .workers(options.workers)
            .tracing(options.tracing)
            .observability(obs)
            .queue_mode(options.queue_mode)
            .interceptor(Arc::clone(&engine) as Arc<dyn atm_runtime::TaskInterceptor>)
            .build();
        TaskedRun {
            runtime,
            engine,
            started: Instant::now(),
            store_save: options.store_save.clone(),
        }
    }

    /// The underlying runtime (register regions / task types, submit tasks).
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// The ATM engine (rarely needed directly; statistics are collected by
    /// [`TaskedRun::finish`]).
    pub fn engine(&self) -> &Arc<AtmEngine> {
        &self.engine
    }

    /// Marks the start of the timed parallel section (call after input
    /// regions are registered, before the first submit).
    pub fn start_timer(&mut self) {
        self.started = Instant::now();
    }

    /// The tracer of the underlying runtime.
    pub fn tracer(&self) -> &Tracer {
        self.runtime.tracer()
    }

    /// Waits for all tasks, collects statistics and produces the [`AppRun`].
    /// `collect_output` extracts the correctness output from the data store.
    pub fn finish(
        self,
        collect_output: impl FnOnce(&atm_runtime::DataStore) -> Vec<f64>,
    ) -> AppRun {
        self.runtime.taskwait();
        let wall = self.started.elapsed();
        let output = collect_output(self.runtime.store());
        let app_memory_bytes = self.runtime.store().total_bytes();
        let trace = if self.runtime.tracer().is_enabled() {
            Some(self.runtime.tracer().summary())
        } else {
            None
        };
        let ready_samples = self.runtime.tracer().ready_samples();
        if let Some(path) = &self.store_save {
            // The run's results are already computed; a failed save (full
            // disk, bad path) costs the snapshot, not the run.
            if let Err(err) = self.engine.save_store(path) {
                eprintln!("failed to save the memo store to {path:?}: {err}");
            }
        }
        // One unified observation replaces the disjoint runtime/engine/store
        // snapshot calls; the engine keeps providing the richer per-type and
        // provenance views the observation DTOs do not carry.
        let observation = self.runtime.observe();
        let run = AppRun {
            output,
            wall,
            runtime_stats: observation.runtime,
            atm_stats: self.engine.stats(),
            store_counters: self.engine.store_counters(),
            type_summaries: self.engine.type_summaries(),
            reuse_events: self.engine.reuse_events(),
            atm_memory_bytes: self.engine.memory_bytes(),
            app_memory_bytes,
            trace,
            ready_samples,
            latency: observation.latency,
            decisions: observation.decisions,
        };
        self.runtime.shutdown();
        run
    }
}

/// Returns true when the engine mode memoizes anything at all (used by apps
/// to decide whether a baseline run needs the engine's bookkeeping).
pub fn atm_is_enabled(config: &AtmConfig) -> bool {
    !matches!(config.mode, AtmMode::Off)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_options_constructors() {
        let base = RunOptions::baseline(4);
        assert_eq!(base.workers, 4);
        assert!(!atm_is_enabled(&base.atm));
        assert_eq!(base.queue_mode, QueueMode::Stealing);
        let with = RunOptions::with_atm(2, AtmConfig::static_atm())
            .traced()
            .queued(QueueMode::Fifo);
        assert!(with.tracing);
        assert!(atm_is_enabled(&with.atm));
        assert_eq!(with.queue_mode, QueueMode::Fifo);
    }

    #[test]
    fn memory_overhead_percent_is_ratio_of_footprints() {
        let run = AppRun {
            output: vec![],
            wall: Duration::from_secs(1),
            runtime_stats: Default::default(),
            atm_stats: Default::default(),
            store_counters: Default::default(),
            type_summaries: Default::default(),
            reuse_events: vec![],
            atm_memory_bytes: 50,
            app_memory_bytes: 1000,
            trace: None,
            ready_samples: vec![],
            latency: MetricsSnapshot::empty(),
            decisions: DecisionSnapshot::default(),
        };
        assert!((run.memory_overhead_percent() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn run_options_carry_persistence_paths() {
        let options = RunOptions::with_atm(1, AtmConfig::static_atm())
            .warm_started("/tmp/in.bin")
            .saving_store("/tmp/out.bin");
        assert_eq!(options.warm_start.as_deref(), Some("/tmp/in.bin".as_ref()));
        assert_eq!(options.store_save.as_deref(), Some("/tmp/out.bin".as_ref()));
        assert!(RunOptions::baseline(1).warm_start.is_none());
    }

    #[test]
    fn tasked_run_saves_and_warm_starts_the_store() {
        let path =
            std::env::temp_dir().join(format!("atm-apps-warmstart-{}.bin", std::process::id()));
        let submit_square = |harness: &TaskedRun| {
            let rt = harness.runtime();
            let input = rt.store().register_typed("in", vec![3.0f64, 4.0]).unwrap();
            let out = rt.store().register_zeros::<f64>("out", 2).unwrap();
            let tt = rt.register_task_type(
                atm_runtime::TaskTypeBuilder::new("square", |ctx| {
                    let x = ctx.arg::<f64>(0);
                    let y: Vec<f64> = x.iter().map(|v| v * v).collect();
                    ctx.out(1, &y);
                })
                .arg::<f64>()
                .out::<f64>()
                .memoizable()
                .build(),
            );
            rt.task(tt).reads(&input).writes(&out).submit().unwrap();
            out
        };

        // Cold run: executes once, persists the store.
        let cold_options = RunOptions::with_atm(1, AtmConfig::static_atm()).saving_store(&path);
        let cold = TaskedRun::new(&cold_options);
        let out = submit_square(&cold);
        let cold_run = cold.finish(|store| store.read(out).lock().as_f64().to_vec());
        assert_eq!(cold_run.output, vec![9.0, 16.0]);
        assert_eq!(cold_run.store_counters.insertions, 1);

        // Warm run: the very same task is a hit before anything executed.
        let warm_options = RunOptions::with_atm(1, AtmConfig::static_atm()).warm_started(&path);
        let warm = TaskedRun::new(&warm_options);
        let out = submit_square(&warm);
        let warm_run = warm.finish(|store| store.read(out).lock().as_f64().to_vec());
        assert_eq!(warm_run.output, vec![9.0, 16.0]);
        assert_eq!(warm_run.atm_stats.executed, 0, "warm start must bypass");
        assert_eq!(warm_run.store_counters.hits, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn observed_run_carries_latency_and_decisions() {
        let options = RunOptions::with_atm(1, AtmConfig::static_atm()).observed();
        let harness = TaskedRun::new(&options);
        let rt = harness.runtime();
        let input = rt.store().register_typed("in", vec![3.0f64, 4.0]).unwrap();
        let out_a = rt.store().register_zeros::<f64>("a", 2).unwrap();
        let out_b = rt.store().register_zeros::<f64>("b", 2).unwrap();
        let tt = rt.register_task_type(
            atm_runtime::TaskTypeBuilder::new("square", |ctx| {
                let x = ctx.arg::<f64>(0);
                let y: Vec<f64> = x.iter().map(|v| v * v).collect();
                ctx.out(1, &y);
            })
            .arg::<f64>()
            .out::<f64>()
            .memoizable()
            .build(),
        );
        rt.task(tt).reads(&input).writes(&out_a).submit().unwrap();
        rt.taskwait();
        rt.task(tt).reads(&input).writes(&out_b).submit().unwrap();
        let run = harness.finish(|store| store.read(out_b).lock().as_f64().to_vec());
        assert_eq!(run.output, vec![9.0, 16.0]);
        let task_latency = run.latency.get(atm_obs::LatencyMetric::TaskLatency);
        assert_eq!(task_latency.count, 2, "both tasks must be timed end to end");
        assert_eq!(
            run.decisions
                .count(tt.index() as u32, atm_obs::MemoDecision::ThtHit),
            run.atm_stats.tht_bypassed
        );

        // Without `.observed()` the same run reports empty instrumentation.
        let silent = TaskedRun::new(&RunOptions::baseline(1));
        let region = silent
            .runtime()
            .store()
            .register_zeros::<f64>("out", 1)
            .unwrap();
        let tt = silent.runtime().register_task_type(
            atm_runtime::TaskTypeBuilder::new("fill", |ctx| ctx.out(0, &[1.0f64]))
                .out::<f64>()
                .build(),
        );
        silent.runtime().task(tt).writes(&region).submit().unwrap();
        let silent_run = silent.finish(|store| store.read(region).lock().as_f64().to_vec());
        assert_eq!(
            silent_run
                .latency
                .get(atm_obs::LatencyMetric::TaskLatency)
                .count,
            0
        );
        assert_eq!(silent_run.decisions.total(), 0);
    }

    #[test]
    fn tasked_run_smoke_test() {
        let mut harness = TaskedRun::new(&RunOptions::baseline(1));
        let region = harness
            .runtime()
            .store()
            .register_zeros::<f64>("out", 2)
            .unwrap();
        let tt = harness.runtime().register_task_type(
            atm_runtime::TaskTypeBuilder::new("fill", |ctx| ctx.out(0, &[1.0f64, 2.0]))
                .out::<f64>()
                .build(),
        );
        harness.start_timer();
        harness.runtime().task(tt).writes(&region).submit().unwrap();
        let run = harness.finish(|store| store.read(region).lock().as_f64().to_vec());
        assert_eq!(run.output, vec![1.0, 2.0]);
        assert_eq!(run.runtime_stats.executed, 1);
        assert!(run.app_memory_bytes >= 16);
    }
}
