//! Gauss-Seidel and Jacobi: 2D five-point stencil heat-diffusion solvers.
//!
//! The matrix is decomposed into square blocks; one `stencilComputation`
//! task updates one block per iteration. As in the paper, the rows/columns a
//! block needs from its neighbours are obtained through separate *copy
//! tasks* that fill per-block halo regions; only the heat-diffusion task
//! type is memoized, not the copy tasks (§IV-A). The walls around the matrix
//! emit heat at a fixed temperature.
//!
//! * **Gauss-Seidel** updates the matrix in place: through the dataflow
//!   dependences of the halo copies, a block consumes the left/upper
//!   neighbours as already updated in the current iteration and the
//!   right/lower neighbours from the previous one (the classic wavefront).
//! * **Jacobi** reads from an "old" copy of the matrix and writes a "new"
//!   copy, with a synchronisation at the end of every iteration and no
//!   dependences between tasks of the same iteration.
//!
//! Redundancy sources (§V-D): the heat front advances only one cell per
//! sweep, so blocks (and the halos they receive) far from the walls remain
//! unchanged for many iterations; and the initialisation is saturated to a
//! few discrete levels, which makes many block neighbourhoods identical to
//! each other from the start.

use crate::common::{AppRun, BenchmarkApp, RunOptions, Scale, TableInfo, TaskedRun};
use atm_hash::Xoshiro256StarStar;
use atm_runtime::{MemoSpec, Region, Runtime, TaskTypeBuilder, TaskTypeId};
use std::sync::OnceLock;

/// Which stencil solver to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StencilVariant {
    /// In-place Gauss-Seidel sweep.
    GaussSeidel,
    /// Two-buffer Jacobi sweep with per-iteration synchronisation.
    Jacobi,
}

/// Configuration of a stencil instance.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilConfig {
    /// Blocks per side (the matrix is `blocks × blocks` blocks).
    pub blocks: usize,
    /// Elements per block side (each block is `block_size × block_size`).
    pub block_size: usize,
    /// Number of sweeps over the matrix.
    pub iterations: usize,
    /// Temperature of the walls surrounding the matrix.
    pub wall_temperature: f32,
    /// Number of discrete levels the random initialisation saturates to
    /// (1 = the whole room starts at the same temperature).
    pub init_levels: usize,
    /// Workload generator seed.
    pub seed: u64,
}

impl StencilConfig {
    /// Configuration for a given scale.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Tiny => StencilConfig {
                blocks: 4,
                block_size: 16,
                iterations: 4,
                wall_temperature: 1.0,
                init_levels: 1,
                seed: 0x57E,
            },
            Scale::Small => StencilConfig {
                blocks: 8,
                block_size: 48,
                iterations: 8,
                wall_temperature: 1.0,
                init_levels: 2,
                seed: 0x57E,
            },
            // The paper: 32×32 blocks of 1024×1024 elements (≈4 GiB), 20,480
            // stencilComputation tasks, 4,210,688 bytes of task input.
            Scale::Paper => StencilConfig {
                blocks: 32,
                block_size: 1024,
                iterations: 20,
                wall_temperature: 1.0,
                init_levels: 3,
                seed: 0x57E,
            },
        }
    }

    /// Elements per block.
    pub fn block_elems(&self) -> usize {
        self.block_size * self.block_size
    }
}

impl Default for StencilConfig {
    fn default() -> Self {
        Self::for_scale(Scale::Small)
    }
}

/// Jacobi block update. The halo slices hold, in order, the row the block
/// sees above itself, below itself, to its left and to its right (each
/// `block_size` elements).
pub fn jacobi_block(
    old_center: &[f32],
    halo_up: &[f32],
    halo_down: &[f32],
    halo_left: &[f32],
    halo_right: &[f32],
    bs: usize,
) -> Vec<f32> {
    let mut new = vec![0.0f32; bs * bs];
    for r in 0..bs {
        for c in 0..bs {
            let v_up = if r > 0 {
                old_center[(r - 1) * bs + c]
            } else {
                halo_up[c]
            };
            let v_down = if r + 1 < bs {
                old_center[(r + 1) * bs + c]
            } else {
                halo_down[c]
            };
            let v_left = if c > 0 {
                old_center[r * bs + c - 1]
            } else {
                halo_left[r]
            };
            let v_right = if c + 1 < bs {
                old_center[r * bs + c + 1]
            } else {
                halo_right[r]
            };
            new[r * bs + c] = 0.25 * (v_up + v_down + v_left + v_right);
        }
    }
    new
}

/// Gauss-Seidel block update: updates the block in place (cells consume the
/// already-updated values of cells above / to the left of them).
pub fn gauss_seidel_block(
    center: &mut [f32],
    halo_up: &[f32],
    halo_down: &[f32],
    halo_left: &[f32],
    halo_right: &[f32],
    bs: usize,
) {
    for r in 0..bs {
        for c in 0..bs {
            let v_up = if r > 0 {
                center[(r - 1) * bs + c]
            } else {
                halo_up[c]
            };
            let v_down = if r + 1 < bs {
                center[(r + 1) * bs + c]
            } else {
                halo_down[c]
            };
            let v_left = if c > 0 {
                center[r * bs + c - 1]
            } else {
                halo_left[r]
            };
            let v_right = if c + 1 < bs {
                center[r * bs + c + 1]
            } else {
                halo_right[r]
            };
            center[r * bs + c] = 0.25 * (v_up + v_down + v_left + v_right);
        }
    }
}

/// Extracts the halo a block receives from one of its neighbours: the
/// neighbour's row/column adjacent to the block. `direction` is which side
/// of the *receiving* block the halo covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaloSide {
    /// The row above the block = the bottom row of the upper neighbour.
    Up,
    /// The row below the block = the top row of the lower neighbour.
    Down,
    /// The column left of the block = the rightmost column of the left neighbour.
    Left,
    /// The column right of the block = the leftmost column of the right neighbour.
    Right,
}

impl HaloSide {
    /// All four sides.
    pub const ALL: [HaloSide; 4] = [
        HaloSide::Up,
        HaloSide::Down,
        HaloSide::Left,
        HaloSide::Right,
    ];

    /// Extracts the halo values from the neighbour block's contents.
    pub fn extract(self, neighbour: &[f32], bs: usize) -> Vec<f32> {
        match self {
            HaloSide::Up => neighbour[(bs - 1) * bs..bs * bs].to_vec(),
            HaloSide::Down => neighbour[0..bs].to_vec(),
            HaloSide::Left => (0..bs).map(|r| neighbour[r * bs + bs - 1]).collect(),
            HaloSide::Right => (0..bs).map(|r| neighbour[r * bs]).collect(),
        }
    }
}

/// A generated stencil problem instance.
pub struct Stencil {
    variant: StencilVariant,
    config: StencilConfig,
    /// Initial per-block contents, row-major by block.
    initial_blocks: Vec<Vec<f32>>,
    reference: OnceLock<Vec<f64>>,
}

impl Stencil {
    /// Generates an instance of the given variant and configuration.
    pub fn new(variant: StencilVariant, config: StencilConfig) -> Self {
        assert!(config.blocks >= 1 && config.block_size >= 2 && config.iterations >= 1);
        let mut rng = Xoshiro256StarStar::new(config.seed);
        let levels = config.init_levels.max(1);
        // Saturated random initialisation: each block starts at a constant
        // temperature drawn from a small set of discrete levels.
        let initial_blocks = (0..config.blocks * config.blocks)
            .map(|_| {
                let level = rng.below(levels) as f32 / levels as f32;
                vec![level * config.wall_temperature * 0.5; config.block_elems()]
            })
            .collect();
        Stencil {
            variant,
            config,
            initial_blocks,
            reference: OnceLock::new(),
        }
    }

    /// Builds the default instance for a scale.
    pub fn at_scale(variant: StencilVariant, scale: Scale) -> Self {
        Self::new(variant, StencilConfig::for_scale(scale))
    }

    /// The configuration of this instance.
    pub fn config(&self) -> &StencilConfig {
        &self.config
    }

    /// The solver variant.
    pub fn variant(&self) -> StencilVariant {
        self.variant
    }

    fn block_index(&self, bi: usize, bj: usize) -> usize {
        bi * self.config.blocks + bj
    }

    fn wall_halo(&self) -> Vec<f32> {
        vec![self.config.wall_temperature; self.config.block_size]
    }

    fn flatten(blocks: &[Vec<f32>]) -> Vec<f64> {
        blocks
            .iter()
            .flat_map(|b| b.iter().map(|&x| f64::from(x)))
            .collect()
    }

    /// Gathers the four halos of block `(bi, bj)` from the given block
    /// contents (used by the sequential reference).
    fn halos_from(&self, blocks: &[Vec<f32>], bi: usize, bj: usize) -> [Vec<f32>; 4] {
        let nb = self.config.blocks;
        let bs = self.config.block_size;
        let up = if bi > 0 {
            HaloSide::Up.extract(&blocks[self.block_index(bi - 1, bj)], bs)
        } else {
            self.wall_halo()
        };
        let down = if bi + 1 < nb {
            HaloSide::Down.extract(&blocks[self.block_index(bi + 1, bj)], bs)
        } else {
            self.wall_halo()
        };
        let left = if bj > 0 {
            HaloSide::Left.extract(&blocks[self.block_index(bi, bj - 1)], bs)
        } else {
            self.wall_halo()
        };
        let right = if bj + 1 < nb {
            HaloSide::Right.extract(&blocks[self.block_index(bi, bj + 1)], bs)
        } else {
            self.wall_halo()
        };
        [up, down, left, right]
    }
}

impl BenchmarkApp for Stencil {
    fn name(&self) -> &'static str {
        match self.variant {
            StencilVariant::GaussSeidel => "Gauss-Seidel",
            StencilVariant::Jacobi => "Jacobi",
        }
    }

    fn table_info(&self) -> TableInfo {
        // Task inputs of one stencilComputation task: the block plus the
        // four halos (matches the paper's "block + neighbouring rows/cols").
        let bytes = (self.config.block_elems() + 4 * self.config.block_size) * 4;
        TableInfo {
            program_inputs: format!(
                "{0}x{0} blocks of {1}x{1} elements, {2} iterations",
                self.config.blocks, self.config.block_size, self.config.iterations
            ),
            task_input_bytes: bytes,
            task_input_types: "float".to_string(),
            memoized_task_type: "stencilComputation".to_string(),
            num_tasks: (self.config.blocks * self.config.blocks * self.config.iterations) as u64,
            correctness_on: "Stencil Matrix".to_string(),
        }
    }

    fn memo_spec(&self) -> MemoSpec {
        // Table II: Gauss-Seidel L_training = 100, Jacobi L_training = 150;
        // τ_max = 1 % for both. At reduced scales the training budget is
        // capped to roughly 5 % of the task count (the paper's empirical
        // upper bound for the training-set size).
        let tasks = self.config.blocks * self.config.blocks * self.config.iterations;
        let cap = (tasks / 20).max(15);
        let l_training = match self.variant {
            StencilVariant::GaussSeidel => 100.min(cap),
            StencilVariant::Jacobi => 150.min(cap),
        };
        MemoSpec::approximate()
            .tau(0.01)
            .training_window(l_training)
    }

    fn run_sequential(&self) -> Vec<f64> {
        let nb = self.config.blocks;
        let bs = self.config.block_size;
        let mut blocks = self.initial_blocks.clone();
        match self.variant {
            StencilVariant::GaussSeidel => {
                for _ in 0..self.config.iterations {
                    for bi in 0..nb {
                        for bj in 0..nb {
                            let [up, down, left, right] = self.halos_from(&blocks, bi, bj);
                            let idx = self.block_index(bi, bj);
                            gauss_seidel_block(&mut blocks[idx], &up, &down, &left, &right, bs);
                        }
                    }
                }
            }
            StencilVariant::Jacobi => {
                for _ in 0..self.config.iterations {
                    let old = blocks.clone();
                    for bi in 0..nb {
                        for bj in 0..nb {
                            let [up, down, left, right] = self.halos_from(&old, bi, bj);
                            let idx = self.block_index(bi, bj);
                            blocks[idx] = jacobi_block(&old[idx], &up, &down, &left, &right, bs);
                        }
                    }
                }
            }
        }
        Self::flatten(&blocks)
    }

    fn run_tasked(&self, options: &RunOptions) -> AppRun {
        let bs = self.config.block_size;
        let nb = self.config.blocks;
        let jacobi = self.variant == StencilVariant::Jacobi;
        let mut harness = TaskedRun::new(options);
        let rt = harness.runtime();

        // Block regions: one buffer for Gauss-Seidel, two (old/new) for Jacobi.
        let register_blocks = |rt: &Runtime, tag: &str| -> Vec<Region<f32>> {
            self.initial_blocks
                .iter()
                .enumerate()
                .map(|(i, b)| {
                    rt.store()
                        .register_typed(format!("{tag}[{i}]"), b.clone())
                        .expect("unique name")
                })
                .collect()
        };
        let buffers: Vec<Vec<Region<f32>>> = if jacobi {
            vec![register_blocks(rt, "old"), register_blocks(rt, "new")]
        } else {
            vec![register_blocks(rt, "block")]
        };

        // Halo regions: 4 per block, plus one shared wall halo.
        let register_halo = |name: String| -> Region<f32> {
            rt.store().register_zeros(name, bs).expect("unique name")
        };
        let halos: Vec<[Region<f32>; 4]> = (0..nb * nb)
            .map(|i| {
                [
                    register_halo(format!("halo_up[{i}]")),
                    register_halo(format!("halo_down[{i}]")),
                    register_halo(format!("halo_left[{i}]")),
                    register_halo(format!("halo_right[{i}]")),
                ]
            })
            .collect();
        let wall_halo = rt
            .store()
            .register_typed("wall_halo", self.wall_halo())
            .expect("unique name");

        // Copy tasks (not memoized): extract one row/column of a neighbour
        // block into a halo region.
        let copy_types: Vec<TaskTypeId> = HaloSide::ALL
            .iter()
            .map(|&side| {
                rt.register_task_type(
                    TaskTypeBuilder::new(
                        match side {
                            HaloSide::Up => "copy_halo_up",
                            HaloSide::Down => "copy_halo_down",
                            HaloSide::Left => "copy_halo_left",
                            HaloSide::Right => "copy_halo_right",
                        },
                        move |ctx| {
                            let neighbour = ctx.arg::<f32>(0);
                            let bs = (neighbour.len() as f64).sqrt() as usize;
                            ctx.out(1, &side.extract(&neighbour, bs));
                        },
                    )
                    .arg::<f32>()
                    .out::<f32>()
                    .build(),
                )
            })
            .collect();

        // The memoized heat-diffusion task type. The declared signature
        // follows the variant's access layout.
        let stencil_builder = TaskTypeBuilder::new("stencilComputation", move |ctx| {
            if jacobi {
                // Accesses: 0 = new centre (out), 1 = old centre (in), 2..=5 halos (in).
                let old_center = ctx.arg::<f32>(1);
                let new = jacobi_block(
                    &old_center,
                    &ctx.arg::<f32>(2),
                    &ctx.arg::<f32>(3),
                    &ctx.arg::<f32>(4),
                    &ctx.arg::<f32>(5),
                    bs,
                );
                ctx.out(0, &new);
            } else {
                // Accesses: 0 = centre (inout), 1..=4 halos (in).
                let mut center = ctx.arg::<f32>(0);
                gauss_seidel_block(
                    &mut center,
                    &ctx.arg::<f32>(1),
                    &ctx.arg::<f32>(2),
                    &ctx.arg::<f32>(3),
                    &ctx.arg::<f32>(4),
                    bs,
                );
                ctx.out(0, &center);
            }
        });
        let stencil_builder = if jacobi {
            stencil_builder.out::<f32>().arg::<f32>()
        } else {
            stencil_builder.inout::<f32>()
        };
        let stencil_type = rt.register_task_type(
            stencil_builder
                .arg::<f32>()
                .arg::<f32>()
                .arg::<f32>()
                .arg::<f32>()
                .memo(self.memo_spec())
                .build(),
        );

        harness.start_timer();
        for iter in 0..self.config.iterations {
            let (read_buf, write_buf) = if jacobi {
                (&buffers[iter % 2], &buffers[(iter + 1) % 2])
            } else {
                (&buffers[0], &buffers[0])
            };
            // One batch per sweep: every block's halo copies and stencil
            // task, staged in the same order as the singleton submissions.
            let mut wave = harness.runtime().batch();
            for bi in 0..nb {
                for bj in 0..nb {
                    let idx = self.block_index(bi, bj);
                    // Stage the four halo copies for this block.
                    let neighbour_of = |side: HaloSide| -> Option<usize> {
                        match side {
                            HaloSide::Up => (bi > 0).then(|| self.block_index(bi - 1, bj)),
                            HaloSide::Down => (bi + 1 < nb).then(|| self.block_index(bi + 1, bj)),
                            HaloSide::Left => (bj > 0).then(|| self.block_index(bi, bj - 1)),
                            HaloSide::Right => (bj + 1 < nb).then(|| self.block_index(bi, bj + 1)),
                        }
                    };
                    let mut halo_inputs = [wall_halo; 4];
                    for (s, &side) in HaloSide::ALL.iter().enumerate() {
                        if let Some(n_idx) = neighbour_of(side) {
                            wave = wave
                                .task(copy_types[s])
                                .reads(&read_buf[n_idx])
                                .writes(&halos[idx][s]);
                            halo_inputs[s] = halos[idx][s];
                        }
                    }

                    // The heat-diffusion task itself.
                    wave = wave.task(stencil_type);
                    if jacobi {
                        wave = wave.writes(&write_buf[idx]).reads(&read_buf[idx]);
                    } else {
                        wave = wave.reads_writes(&read_buf[idx]);
                    }
                    for halo in &halo_inputs {
                        wave = wave.reads(halo);
                    }
                }
            }
            wave.submit_all()
                .expect("stencil submissions match the declared signatures");
            if jacobi {
                // The algorithm synchronises at the end of each iteration (§IV-A).
                harness.runtime().taskwait();
            }
        }

        let final_buffer = if jacobi {
            buffers[self.config.iterations % 2].clone()
        } else {
            buffers[0].clone()
        };
        harness.finish(move |store| {
            let mut out = Vec::new();
            for region in &final_buffer {
                out.extend(store.read(*region).lock().to_f64_vec());
            }
            out
        })
    }

    fn reference(&self) -> &[f64] {
        self.reference.get_or_init(|| self.run_sequential())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_core::AtmConfig;
    use atm_metrics::euclidean_relative_error;

    #[test]
    fn jacobi_block_averages_its_neighbours() {
        let bs = 2;
        let center = vec![0.0; 4];
        let hot = vec![1.0; 2];
        let new = jacobi_block(&center, &hot, &hot, &hot, &hot, bs);
        // Each cell sees two wall cells (1.0) and two centre cells (0.0).
        assert_eq!(new, vec![0.5; 4]);
    }

    #[test]
    fn gauss_seidel_block_uses_updated_values_in_sweep_order() {
        let bs = 2;
        let mut center = vec![0.0; 4];
        let hot = vec![1.0; 2];
        gauss_seidel_block(&mut center, &hot, &hot, &hot, &hot, bs);
        // Cell (0,0): up=1, down=0, left=1, right=0 -> 0.5.
        // Cell (0,1): up=1, down=0, left=0.5 (already updated), right=1 -> 0.625.
        assert!((center[0] - 0.5).abs() < 1e-6);
        assert!((center[1] - 0.625).abs() < 1e-6);
    }

    #[test]
    fn halo_extraction_picks_the_adjacent_row_or_column() {
        let bs = 3;
        #[rustfmt::skip]
        let block = vec![
            1.0, 2.0, 3.0,
            4.0, 5.0, 6.0,
            7.0, 8.0, 9.0,
        ];
        assert_eq!(HaloSide::Up.extract(&block, bs), vec![7.0, 8.0, 9.0]);
        assert_eq!(HaloSide::Down.extract(&block, bs), vec![1.0, 2.0, 3.0]);
        assert_eq!(HaloSide::Left.extract(&block, bs), vec![3.0, 6.0, 9.0]);
        assert_eq!(HaloSide::Right.extract(&block, bs), vec![1.0, 4.0, 7.0]);
    }

    #[test]
    fn stencil_heat_stays_bounded_by_wall_temperature() {
        for variant in [StencilVariant::GaussSeidel, StencilVariant::Jacobi] {
            let app = Stencil::at_scale(variant, Scale::Tiny);
            let result = app.run_sequential();
            assert!(
                result.iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)),
                "{variant:?} produced out-of-range temperatures"
            );
            assert!(
                result.iter().any(|&x| x > 0.0),
                "heat must have entered the matrix"
            );
        }
    }

    #[test]
    fn gauss_seidel_converges_faster_than_jacobi() {
        // After the same number of sweeps the Gauss-Seidel room must be
        // globally warmer (its sweeps propagate heat across the whole matrix).
        let gs: f64 = Stencil::at_scale(StencilVariant::GaussSeidel, Scale::Tiny)
            .run_sequential()
            .iter()
            .sum();
        let ja: f64 = Stencil::at_scale(StencilVariant::Jacobi, Scale::Tiny)
            .run_sequential()
            .iter()
            .sum();
        assert!(
            gs > ja,
            "Gauss-Seidel should be ahead of Jacobi after equal sweeps (GS={gs:.3}, J={ja:.3})"
        );
    }

    #[test]
    fn tasked_gauss_seidel_matches_sequential_without_atm() {
        let app = Stencil::at_scale(StencilVariant::GaussSeidel, Scale::Tiny);
        let run = app.run_tasked(&RunOptions::baseline(2));
        let err = euclidean_relative_error(app.reference(), &run.output);
        assert!(err < 1e-12, "Gauss-Seidel taskified output mismatch: {err}");
    }

    #[test]
    fn tasked_jacobi_matches_sequential_without_atm() {
        let app = Stencil::at_scale(StencilVariant::Jacobi, Scale::Tiny);
        let run = app.run_tasked(&RunOptions::baseline(2));
        let err = euclidean_relative_error(app.reference(), &run.output);
        assert!(err < 1e-12, "Jacobi taskified output mismatch: {err}");
    }

    #[test]
    fn static_atm_is_exact_on_both_stencils() {
        for variant in [StencilVariant::GaussSeidel, StencilVariant::Jacobi] {
            let app = Stencil::at_scale(variant, Scale::Tiny);
            let run = app.run_tasked(&RunOptions::with_atm(2, AtmConfig::static_atm()));
            assert_eq!(
                app.output_error(&run.output),
                0.0,
                "{variant:?}: static ATM must be exact"
            );
        }
    }

    #[test]
    fn static_atm_finds_reuse_in_jacobi() {
        let app = Stencil::at_scale(StencilVariant::Jacobi, Scale::Tiny);
        let run = app.run_tasked(&RunOptions::with_atm(1, AtmConfig::static_atm()));
        assert!(
            run.reuse_percent() > 20.0,
            "identical interior neighbourhoods must produce exact reuse, got {:.1}%",
            run.reuse_percent()
        );
        // Only stencilComputation tasks count as memoizable: 16 blocks × 4 iterations.
        assert_eq!(run.atm_stats.seen, 64);
    }

    #[test]
    fn table_info_reports_block_plus_halo_inputs() {
        let app = Stencil::at_scale(StencilVariant::Jacobi, Scale::Tiny);
        let info = app.table_info();
        assert_eq!(info.task_input_bytes, (16 * 16 + 4 * 16) * 4);
        assert_eq!(info.memoized_task_type, "stencilComputation");
        assert_eq!(info.num_tasks, 64);
    }
}
