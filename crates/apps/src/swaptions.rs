//! Swaptions: Monte-Carlo pricing of a portfolio of European swaptions under
//! a simplified Heath–Jarrow–Morton (HJM) framework.
//!
//! One `HJM_Swaption_Blocking` task prices one swaption: it simulates many
//! forward-curve paths, computes the swap value at the option maturity on
//! each path and averages the discounted payoff. The Monte-Carlo random
//! stream is seeded deterministically from the swaption's own parameters, so
//! a task is a pure function of its declared inputs — the prerequisite for
//! memoization the paper spells out in §III-E.
//!
//! Redundancy source (§V-D): the portfolio replicates a small pool of
//! distinct swaption records (the PARSEC native input does the same); half
//! of the copies carry tiny perturbations in the low-order mantissa bits,
//! which exact memoization cannot exploit but Dynamic ATM's approximate keys
//! can (the paper reports 7 % reuse for Static ATM vs 20 % for Dynamic ATM).

use crate::common::{AppRun, BenchmarkApp, RunOptions, Scale, TableInfo, TaskedRun};
use atm_hash::{jenkins_hash64, Xoshiro256StarStar};
use atm_runtime::{MemoSpec, Region, TaskTypeBuilder};
use std::sync::OnceLock;

/// Number of points on the initial forward-rate curve carried by every
/// swaption record (the PARSEC task input is ~376 bytes of doubles; 5 scalar
/// parameters + 42 curve points ≈ the same footprint).
pub const CURVE_POINTS: usize = 42;
/// Scalar parameters preceding the curve: strike, maturity, tenor,
/// volatility, number of Monte-Carlo trials.
pub const SCALARS: usize = 5;
/// Total `f64` values in one swaption record.
pub const RECORD_LEN: usize = SCALARS + CURVE_POINTS;

/// Configuration of a Swaptions instance.
#[derive(Debug, Clone, PartialEq)]
pub struct SwaptionsConfig {
    /// Number of swaptions in the portfolio.
    pub swaptions: usize,
    /// Number of distinct swaption records in the generator pool.
    pub distinct: usize,
    /// Monte-Carlo trials per swaption.
    pub trials: usize,
    /// Time steps per simulated path.
    pub steps: usize,
    /// Workload generator seed.
    pub seed: u64,
}

impl SwaptionsConfig {
    /// Configuration for a given scale.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Tiny => SwaptionsConfig {
                swaptions: 96,
                distinct: 12,
                trials: 128,
                steps: 16,
                seed: 0x5A,
            },
            Scale::Small => SwaptionsConfig {
                swaptions: 256,
                distinct: 48,
                trials: 512,
                steps: 24,
                seed: 0x5A,
            },
            // The paper: the native input enlarged to 512 swaptions, 376
            // bytes of (double) task inputs, 512 HJM_Swaption_Blocking tasks.
            Scale::Paper => SwaptionsConfig {
                swaptions: 512,
                distinct: 64,
                trials: 20_000,
                steps: 50,
                seed: 0x5A,
            },
        }
    }
}

impl Default for SwaptionsConfig {
    fn default() -> Self {
        Self::for_scale(Scale::Small)
    }
}

/// Prices one swaption record with Monte-Carlo simulation of the forward
/// curve. Returns `(price, standard_error)`.
///
/// The record layout is `[strike, maturity, tenor, volatility, trials,
/// curve...]`. The simulation is deterministic: its random stream is seeded
/// from the record's own bytes.
pub fn price_swaption(record: &[f64], steps: usize) -> (f64, f64) {
    assert_eq!(record.len(), RECORD_LEN, "malformed swaption record");
    let strike = record[0];
    let maturity = record[1];
    let tenor = record[2];
    let volatility = record[3];
    let trials = record[4] as usize;
    let curve = &record[SCALARS..];

    // Deterministic per-record seed: the task output must be a pure function
    // of the task inputs for memoization to be sound (§III-E).
    let seed_bytes: Vec<u8> = record.iter().flat_map(|x| x.to_le_bytes()).collect();
    let mut rng = Xoshiro256StarStar::new(jenkins_hash64(&seed_bytes, 0x5AA5));

    let dt = maturity / steps as f64;
    let tenor_points = (tenor.round() as usize).clamp(1, CURVE_POINTS - 1);

    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for _ in 0..trials.max(1) {
        // Evolve a flat short-rate factor driving the whole curve
        // (one-factor HJM with constant volatility and drift adjustment).
        let mut shift = 0.0f64;
        let mut discount = 1.0f64;
        for _ in 0..steps {
            let base_rate = curve[0] + shift;
            discount *= (-base_rate.max(0.0) * dt).exp();
            let dz = rng.next_gaussian();
            shift += (-0.5 * volatility * volatility) * dt + volatility * dt.sqrt() * dz;
        }
        // Swap rate at maturity: average of the shifted forward curve over
        // the swap tenor.
        let swap_rate: f64 = curve[..tenor_points]
            .iter()
            .map(|f| (f + shift).max(0.0))
            .sum::<f64>()
            / tenor_points as f64;
        // Annuity of the fixed leg (yearly payments over the tenor).
        let mut annuity = 0.0f64;
        let mut df = discount;
        for rate in curve.iter().take(tenor_points) {
            df *= (-(rate + shift).max(0.0)).exp();
            annuity += df;
        }
        let payoff = (swap_rate - strike).max(0.0) * annuity;
        let discounted = payoff * discount;
        sum += discounted;
        sum_sq += discounted * discounted;
    }
    let n = trials.max(1) as f64;
    let mean = sum / n;
    let variance = (sum_sq / n - mean * mean).max(0.0);
    (mean, (variance / n).sqrt())
}

/// A generated Swaptions problem instance.
pub struct Swaptions {
    config: SwaptionsConfig,
    /// All swaption records, `RECORD_LEN` doubles per swaption.
    portfolio: Vec<f64>,
    reference: OnceLock<Vec<f64>>,
}

impl Swaptions {
    /// Generates the portfolio by cycling a pool of distinct records;
    /// every second replica carries a tiny low-mantissa perturbation.
    pub fn new(config: SwaptionsConfig) -> Self {
        assert!(config.swaptions > 0 && config.distinct > 0);
        let mut rng = Xoshiro256StarStar::new(config.seed);

        // Shared base yield curve, gently upward sloping.
        let base_curve: Vec<f64> = (0..CURVE_POINTS)
            .map(|i| 0.02 + 0.0005 * i as f64 + rng.next_f64() * 1e-4)
            .collect();

        let mut pool = Vec::with_capacity(config.distinct * RECORD_LEN);
        for _ in 0..config.distinct {
            let strike = rng.range_f64(0.015, 0.045);
            let maturity = rng.range_f64(1.0, 5.0).round();
            let tenor = rng.range_f64(2.0, 10.0).round();
            let volatility = rng.range_f64(0.05, 0.25);
            pool.extend_from_slice(&[strike, maturity, tenor, volatility, config.trials as f64]);
            pool.extend_from_slice(&base_curve);
        }

        let mut portfolio = Vec::with_capacity(config.swaptions * RECORD_LEN);
        for i in 0..config.swaptions {
            let j = i % config.distinct;
            let mut record = pool[j * RECORD_LEN..(j + 1) * RECORD_LEN].to_vec();
            let replica = (i / config.distinct) as u64;
            if replica % 2 == 1 {
                // Low-order mantissa perturbation of the strike and the
                // curve, different for every odd replica: invisible to a
                // most-significant-byte hash, but it breaks exact (Static
                // ATM) matching.
                let wobble = replica & 0x7;
                record[0] = f64::from_bits(record[0].to_bits() ^ wobble ^ 0x1);
                for point in record[SCALARS..].iter_mut() {
                    *point = f64::from_bits(point.to_bits() ^ wobble);
                }
            }
            portfolio.extend_from_slice(&record);
        }
        Swaptions {
            config,
            portfolio,
            reference: OnceLock::new(),
        }
    }

    /// Builds the default instance for a scale.
    pub fn at_scale(scale: Scale) -> Self {
        Self::new(SwaptionsConfig::for_scale(scale))
    }

    /// The configuration of this instance.
    pub fn config(&self) -> &SwaptionsConfig {
        &self.config
    }

    fn record(&self, i: usize) -> &[f64] {
        &self.portfolio[i * RECORD_LEN..(i + 1) * RECORD_LEN]
    }
}

impl BenchmarkApp for Swaptions {
    fn name(&self) -> &'static str {
        "Swaptions"
    }

    fn table_info(&self) -> TableInfo {
        TableInfo {
            program_inputs: format!(
                "{} swaptions ({} distinct), {} trials",
                self.config.swaptions, self.config.distinct, self.config.trials
            ),
            task_input_bytes: RECORD_LEN * 8,
            task_input_types: "double".to_string(),
            memoized_task_type: "HJM_Swaption_Blocking".to_string(),
            num_tasks: self.config.swaptions as u64,
            correctness_on: "Prices Vector".to_string(),
        }
    }

    fn memo_spec(&self) -> MemoSpec {
        // Table II: L_training = 15, τ_max = 20 %.
        MemoSpec::approximate().tau(0.20).training_window(15)
    }

    fn run_sequential(&self) -> Vec<f64> {
        let mut prices = Vec::with_capacity(self.config.swaptions);
        for i in 0..self.config.swaptions {
            let (price, _stderr) = price_swaption(self.record(i), self.config.steps);
            prices.push(price);
        }
        prices
    }

    fn run_tasked(&self, options: &RunOptions) -> AppRun {
        let steps = self.config.steps;
        let mut harness = TaskedRun::new(options);
        let rt = harness.runtime();

        let record_regions: Vec<Region<f64>> = (0..self.config.swaptions)
            .map(|i| {
                rt.store()
                    .register_typed(format!("swaption[{i}]"), self.record(i).to_vec())
                    .expect("unique name")
            })
            .collect();
        let result_regions: Vec<Region<f64>> = (0..self.config.swaptions)
            .map(|i| {
                rt.store()
                    .register_zeros(format!("price[{i}]"), 2)
                    .expect("unique name")
            })
            .collect();

        // The approximation policy is declared on the task type, where the
        // kernel is registered.
        let hjm_type = rt.register_task_type(
            TaskTypeBuilder::new("HJM_Swaption_Blocking", move |ctx| {
                let record = ctx.arg::<f64>(0);
                let (price, stderr) = price_swaption(&record, steps);
                ctx.out(1, &[price, stderr]);
            })
            .arg::<f64>()
            .out::<f64>()
            .memo(self.memo_spec())
            .build(),
        );

        harness.start_timer();
        // All swaption pricings are independent: one batch for the whole run.
        let mut wave = harness.runtime().tasks(hjm_type);
        for (record, result) in record_regions.iter().zip(&result_regions) {
            wave = wave.next().reads(record).writes(result);
        }
        wave.submit_all()
            .expect("HJM submissions match the declared signature");

        harness.finish(move |store| {
            result_regions
                .iter()
                .map(|r| store.read(*r).lock().as_f64()[0])
                .collect()
        })
    }

    fn reference(&self) -> &[f64] {
        self.reference.get_or_init(|| self.run_sequential())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_core::AtmConfig;
    use atm_metrics::euclidean_relative_error;

    fn test_record(strike: f64, vol: f64) -> Vec<f64> {
        let mut record = vec![strike, 3.0, 5.0, vol, 256.0];
        record.extend((0..CURVE_POINTS).map(|i| 0.03 + 0.0004 * i as f64));
        record
    }

    #[test]
    fn pricing_is_deterministic_for_identical_records() {
        let record = test_record(0.03, 0.15);
        let (p1, e1) = price_swaption(&record, 16);
        let (p2, e2) = price_swaption(&record, 16);
        assert_eq!(p1, p2);
        assert_eq!(e1, e2);
        assert!(p1 >= 0.0, "a payer swaption payoff is never negative");
        assert!(e1 >= 0.0);
    }

    #[test]
    fn deeper_in_the_money_swaptions_are_worth_more() {
        let expensive = price_swaption(&test_record(0.01, 0.15), 16).0;
        let cheap = price_swaption(&test_record(0.05, 0.15), 16).0;
        assert!(
            expensive > cheap,
            "lower strike must give a higher payer swaption price ({expensive} vs {cheap})"
        );
    }

    #[test]
    fn portfolio_replicates_the_pool() {
        let app = Swaptions::at_scale(Scale::Tiny);
        let d = app.config.distinct;
        // The first replica of the pool is exact.
        assert_eq!(app.record(0), app.record(0));
        // Records one pool-cycle apart are perturbed copies: equal in their
        // high-order bytes but not bit-identical.
        let a = app.record(0);
        let b = app.record(d);
        assert_ne!(a, b, "odd replicas carry a low-mantissa perturbation");
        assert!((a[0] - b[0]).abs() < 1e-12, "the perturbation must be tiny");
    }

    #[test]
    fn tasked_matches_sequential_without_atm() {
        let app = Swaptions::at_scale(Scale::Tiny);
        let run = app.run_tasked(&RunOptions::baseline(2));
        let err = euclidean_relative_error(app.reference(), &run.output);
        assert!(err < 1e-12, "taskified Swaptions output mismatch: {err}");
    }

    #[test]
    fn static_atm_is_exact_and_reuses_only_exact_duplicates() {
        let app = Swaptions::at_scale(Scale::Tiny);
        let run = app.run_tasked(&RunOptions::with_atm(1, AtmConfig::static_atm()));
        assert_eq!(
            app.output_error(&run.output),
            0.0,
            "static ATM must be exact"
        );
        // Tiny scale: 96 swaptions, 12 distinct; the even replicas of each
        // pool entry are exact copies, the odd replicas carry distinct
        // perturbations — so exact matching can find at most the even ones.
        let reuse = run.reuse_percent();
        assert!(
            reuse > 5.0 && reuse < 60.0,
            "static reuse should be modest, got {reuse:.1}%"
        );
    }

    #[test]
    fn dynamic_atm_trains_reuses_and_stays_accurate() {
        let app = Swaptions::at_scale(Scale::Tiny);
        let run = app.run_tasked(&RunOptions::with_atm(1, AtmConfig::dynamic_atm()));
        assert!(
            run.atm_stats.training_hits > 0,
            "the training phase must verify some approximations"
        );
        assert!(
            run.reuse_percent() > 0.0,
            "dynamic ATM must bypass some swaptions after training"
        );
        let correctness = app.correctness_percent(&run.output);
        assert!(
            correctness > 90.0,
            "dynamic Swaptions correctness too low: {correctness:.2}%"
        );
    }

    #[test]
    fn table_info_matches_the_paper_record_shape() {
        let app = Swaptions::at_scale(Scale::Tiny);
        let info = app.table_info();
        assert_eq!(info.task_input_bytes, RECORD_LEN * 8);
        assert_eq!(info.memoized_task_type, "HJM_Swaption_Blocking");
        assert_eq!(info.correctness_on, "Prices Vector");
    }
}
