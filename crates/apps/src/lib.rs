//! The six applications evaluated in the ATM paper, taskified on the
//! `atm-runtime` dataflow runtime with the paper's memoized task types.
//!
//! | Benchmark | Domain | Memoized task type | Redundancy source |
//! |-----------|--------|--------------------|-------------------|
//! | [`blackscholes`] | financial analysis | `bs_thread` | repetitive program input + repeated outer iterations |
//! | [`stencil`] (Gauss-Seidel) | stencil computation | `stencilComputation` | slow heat front + saturated initialisation |
//! | [`stencil`] (Jacobi) | stencil computation | `stencilComputation` | same, with per-iteration barriers |
//! | [`kmeans`] | machine learning | `kmeans_calculate` | per-cluster convergence (approximate-only) |
//! | [`sparselu`] | linear algebra | `bmod` | repeated sparse block patterns |
//! | [`swaptions`] | financial analysis | `HJM_Swaption_Blocking` | replicated + perturbed swaption records |
//!
//! Every application offers a sequential reference, a taskified version and
//! the correctness metric of Table I, behind the common [`BenchmarkApp`]
//! trait. Use [`build_app`] to instantiate a benchmark by name at a given
//! [`Scale`].

#![warn(missing_docs)]

pub mod blackscholes;
pub mod common;
pub mod kmeans;
pub mod sparselu;
pub mod stencil;
pub mod swaptions;

pub use common::{AppRun, BenchmarkApp, RunOptions, Scale, TableInfo, TaskedRun};

use blackscholes::Blackscholes;
use kmeans::Kmeans;
use sparselu::SparseLu;
use stencil::{Stencil, StencilVariant};
use swaptions::Swaptions;

/// Identifier of one of the six evaluated applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppId {
    /// Black–Scholes option pricing.
    Blackscholes,
    /// Gauss-Seidel heat diffusion.
    GaussSeidel,
    /// Jacobi heat diffusion.
    Jacobi,
    /// Kmeans clustering.
    Kmeans,
    /// Sparse blocked LU decomposition.
    SparseLu,
    /// HJM Monte-Carlo swaption pricing.
    Swaptions,
}

impl AppId {
    /// All applications, in the order the paper's figures list them.
    pub const ALL: [AppId; 6] = [
        AppId::Blackscholes,
        AppId::GaussSeidel,
        AppId::Jacobi,
        AppId::Kmeans,
        AppId::SparseLu,
        AppId::Swaptions,
    ];

    /// The display name used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            AppId::Blackscholes => "Blackscholes",
            AppId::GaussSeidel => "Gauss-Seidel",
            AppId::Jacobi => "Jacobi",
            AppId::Kmeans => "Kmeans",
            AppId::SparseLu => "LU",
            AppId::Swaptions => "Swaptions",
        }
    }

    /// Short name (used for CSV files and CLI arguments).
    pub fn short_name(self) -> &'static str {
        match self {
            AppId::Blackscholes => "blackscholes",
            AppId::GaussSeidel => "gs",
            AppId::Jacobi => "jacobi",
            AppId::Kmeans => "kmeans",
            AppId::SparseLu => "lu",
            AppId::Swaptions => "swaptions",
        }
    }

    /// Parses a short or display name (case-insensitive).
    pub fn parse(name: &str) -> Option<AppId> {
        let lower = name.to_ascii_lowercase();
        AppId::ALL
            .into_iter()
            .find(|app| app.short_name() == lower || app.name().to_ascii_lowercase() == lower)
    }
}

impl std::fmt::Display for AppId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Instantiates (generates the workload of) one application at a scale.
pub fn build_app(app: AppId, scale: Scale) -> Box<dyn BenchmarkApp> {
    match app {
        AppId::Blackscholes => Box::new(Blackscholes::at_scale(scale)),
        AppId::GaussSeidel => Box::new(Stencil::at_scale(StencilVariant::GaussSeidel, scale)),
        AppId::Jacobi => Box::new(Stencil::at_scale(StencilVariant::Jacobi, scale)),
        AppId::Kmeans => Box::new(Kmeans::at_scale(scale)),
        AppId::SparseLu => Box::new(SparseLu::at_scale(scale)),
        AppId::Swaptions => Box::new(Swaptions::at_scale(scale)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_names_round_trip_through_parse() {
        for app in AppId::ALL {
            assert_eq!(AppId::parse(app.short_name()), Some(app));
            assert_eq!(AppId::parse(app.name()), Some(app));
            assert_eq!(AppId::parse(&app.name().to_uppercase()), Some(app));
        }
        assert_eq!(AppId::parse("not-a-benchmark"), None);
    }

    #[test]
    fn every_app_builds_at_tiny_scale_and_reports_table_info() {
        for app_id in AppId::ALL {
            let app = build_app(app_id, Scale::Tiny);
            assert_eq!(app.name(), app_id.name());
            let info = app.table_info();
            assert!(
                info.task_input_bytes > 0,
                "{app_id}: task inputs must be non-empty"
            );
            assert!(
                info.num_tasks > 0,
                "{app_id}: there must be memoizable tasks"
            );
            assert!(!info.memoized_task_type.is_empty());
            assert!(app.memo_spec().training_window_len() >= 1);
            assert!(app.memo_spec().tau_max() > 0.0);
        }
    }
}
