//! Sparse LU: blocked LU decomposition of a sparse matrix.
//!
//! The matrix is an `NB × NB` grid of `B × B` blocks, many of which are
//! null. The classic OmpSs SparseLU task decomposition is used:
//!
//! * `lu0`   — factorises the diagonal block of the current panel;
//! * `fwd`   — applies the L factor to a block of the pivot row;
//! * `bdiv`  — applies the U factor to a block of the pivot column;
//! * `bmod`  — the trailing-matrix update `A[i][j] -= A[i][k] · A[k][j]`,
//!   by far the most frequently executed routine and the task type the
//!   paper memoizes.
//!
//! Redundancy source (§V-D): the non-null blocks of the input matrix are
//! drawn from a small pool of distinct block patterns, so `bmod` repeatedly
//! sees the same `(A[i][k], A[k][j], A[i][j])` operand combinations — reuse
//! at short distances, spread over the whole execution.
//!
//! Correctness is application specific (Eq. 4): `|A − L·U|² / |A|²`, where
//! `L` and `U` are re-assembled from the factorised blocks.

use crate::common::{AppRun, BenchmarkApp, RunOptions, Scale, TableInfo, TaskedRun};
use atm_hash::Xoshiro256StarStar;
use atm_metrics::lu_residual_error;
use atm_runtime::{MemoSpec, Region, TaskTypeBuilder};
use std::sync::OnceLock;

/// Configuration of a Sparse LU instance.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseLuConfig {
    /// Blocks per side (`NB`).
    pub blocks: usize,
    /// Elements per block side (`B`).
    pub block_size: usize,
    /// Probability that an off-diagonal block is non-null.
    pub density: f64,
    /// Number of distinct non-null block patterns in the generator pool.
    pub distinct_blocks: usize,
    /// Workload generator seed.
    pub seed: u64,
}

impl SparseLuConfig {
    /// Configuration for a given scale.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Tiny => SparseLuConfig {
                blocks: 5,
                block_size: 12,
                density: 0.6,
                distinct_blocks: 1,
                seed: 0x10,
            },
            Scale::Small => SparseLuConfig {
                blocks: 10,
                block_size: 24,
                density: 0.5,
                distinct_blocks: 2,
                seed: 0x10,
            },
            // The paper: 20×20 blocks of 256×256 floats, 670 bmod tasks,
            // 786,432 bytes of task input.
            Scale::Paper => SparseLuConfig {
                blocks: 20,
                block_size: 256,
                density: 0.3,
                distinct_blocks: 8,
                seed: 0x10,
            },
        }
    }

    /// Elements per block.
    pub fn block_elems(&self) -> usize {
        self.block_size * self.block_size
    }

    /// Elements per matrix side.
    pub fn matrix_side(&self) -> usize {
        self.blocks * self.block_size
    }
}

impl Default for SparseLuConfig {
    fn default() -> Self {
        Self::for_scale(Scale::Small)
    }
}

/// `lu0`: in-place LU factorisation (no pivoting) of a diagonal block.
pub fn lu0(diag: &mut [f32], b: usize) {
    for k in 0..b {
        let pivot = diag[k * b + k];
        for i in k + 1..b {
            diag[i * b + k] /= pivot;
            let lik = diag[i * b + k];
            for j in k + 1..b {
                diag[i * b + j] -= lik * diag[k * b + j];
            }
        }
    }
}

/// `fwd`: applies the unit-lower-triangular factor of `diag` to a block of
/// the pivot row (solves `L·X = block` in place).
pub fn fwd(diag: &[f32], block: &mut [f32], b: usize) {
    for k in 0..b {
        for i in k + 1..b {
            let lik = diag[i * b + k];
            for j in 0..b {
                block[i * b + j] -= lik * block[k * b + j];
            }
        }
    }
}

/// `bdiv`: applies the upper-triangular factor of `diag` to a block of the
/// pivot column (solves `X·U = block` in place).
pub fn bdiv(diag: &[f32], block: &mut [f32], b: usize) {
    for k in 0..b {
        let pivot = diag[k * b + k];
        for i in 0..b {
            block[i * b + k] /= pivot;
            let xik = block[i * b + k];
            for j in k + 1..b {
                block[i * b + j] -= xik * diag[k * b + j];
            }
        }
    }
}

/// `bmod`: the trailing update `target -= row · col` (the memoized task type).
pub fn bmod(row: &[f32], col: &[f32], target: &mut [f32], b: usize) {
    for i in 0..b {
        for k in 0..b {
            let rik = row[i * b + k];
            if rik == 0.0 {
                continue;
            }
            for j in 0..b {
                target[i * b + j] -= rik * col[k * b + j];
            }
        }
    }
}

/// A generated Sparse LU problem instance.
pub struct SparseLu {
    config: SparseLuConfig,
    /// `blocks × blocks` grid; `None` = null block.
    initial: Vec<Option<Vec<f32>>>,
    /// The dense original matrix (for the Eq. 4 residual).
    dense_a: Vec<f64>,
    reference: OnceLock<Vec<f64>>,
}

impl SparseLu {
    /// Generates a sparse, diagonally-dominant block matrix whose non-null
    /// blocks are drawn from a small pool of patterns.
    pub fn new(config: SparseLuConfig) -> Self {
        assert!(config.blocks >= 2 && config.block_size >= 2);
        let nb = config.blocks;
        let b = config.block_size;
        let mut rng = Xoshiro256StarStar::new(config.seed);

        // Pool of distinct off-diagonal block patterns (small values so the
        // matrix stays well conditioned without pivoting).
        let pool: Vec<Vec<f32>> = (0..config.distinct_blocks.max(1))
            .map(|_| (0..b * b).map(|_| (rng.next_f32() - 0.5) * 0.2).collect())
            .collect();

        let mut initial: Vec<Option<Vec<f32>>> = vec![None; nb * nb];
        for i in 0..nb {
            for j in 0..nb {
                if i == j {
                    // Diagonal blocks: a pool pattern plus strong diagonal dominance.
                    let mut block = pool[(i + j) % pool.len()].clone();
                    for d in 0..b {
                        block[d * b + d] += b as f32;
                    }
                    initial[i * nb + j] = Some(block);
                } else if rng.next_f64() < config.density {
                    initial[i * nb + j] = Some(pool[rng.below(pool.len())].clone());
                }
            }
        }

        let dense_a = Self::to_dense(&initial, nb, b);
        SparseLu {
            config,
            initial,
            dense_a,
            reference: OnceLock::new(),
        }
    }

    /// Builds the default instance for a scale.
    pub fn at_scale(scale: Scale) -> Self {
        Self::new(SparseLuConfig::for_scale(scale))
    }

    /// The configuration of this instance.
    pub fn config(&self) -> &SparseLuConfig {
        &self.config
    }

    /// The original matrix as a dense row-major `f64` vector.
    pub fn dense_a(&self) -> &[f64] {
        &self.dense_a
    }

    fn idx(&self, i: usize, j: usize) -> usize {
        i * self.config.blocks + j
    }

    fn to_dense(blocks: &[Option<Vec<f32>>], nb: usize, b: usize) -> Vec<f64> {
        let n = nb * b;
        let mut dense = vec![0.0f64; n * n];
        for bi in 0..nb {
            for bj in 0..nb {
                if let Some(block) = &blocks[bi * nb + bj] {
                    for r in 0..b {
                        for c in 0..b {
                            dense[(bi * b + r) * n + bj * b + c] = f64::from(block[r * b + c]);
                        }
                    }
                }
            }
        }
        dense
    }

    /// Sequential blocked factorisation (also records which blocks fill in).
    fn factorise_sequential(&self) -> Vec<Option<Vec<f32>>> {
        let nb = self.config.blocks;
        let b = self.config.block_size;
        let mut m = self.initial.clone();
        for k in 0..nb {
            {
                let diag = m[self.idx(k, k)]
                    .as_mut()
                    .expect("diagonal blocks are always present");
                lu0(diag, b);
            }
            let diag = m[self.idx(k, k)].clone().unwrap();
            for j in k + 1..nb {
                if m[self.idx(k, j)].is_some() {
                    fwd(&diag, m[self.idx(k, j)].as_mut().unwrap(), b);
                }
            }
            for i in k + 1..nb {
                if m[self.idx(i, k)].is_some() {
                    bdiv(&diag, m[self.idx(i, k)].as_mut().unwrap(), b);
                }
            }
            for i in k + 1..nb {
                if m[self.idx(i, k)].is_none() {
                    continue;
                }
                let row = m[self.idx(i, k)].clone().unwrap();
                for j in k + 1..nb {
                    if m[self.idx(k, j)].is_none() {
                        continue;
                    }
                    let col = m[self.idx(k, j)].clone().unwrap();
                    let target = m[self.idx(i, j)].get_or_insert_with(|| vec![0.0f32; b * b]);
                    bmod(&row, &col, target, b);
                }
            }
        }
        m
    }

    /// Reconstructs `L·U` from a factorised matrix (flattened dense, f64).
    pub fn reconstruct_lu(&self, factorised_dense: &[f64]) -> Vec<f64> {
        let n = self.config.matrix_side();
        assert_eq!(factorised_dense.len(), n * n);
        let mut product = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                // (L·U)[i][j] = Σ_k L[i][k] · U[k][j], with L unit lower
                // triangular and U upper triangular, both stored in place.
                let mut sum = 0.0;
                let kmax = i.min(j);
                for k in 0..=kmax {
                    let l = if k == i {
                        1.0
                    } else {
                        factorised_dense[i * n + k]
                    };
                    let u = factorised_dense[k * n + j];
                    sum += l * u;
                }
                product[i * n + j] = sum;
            }
        }
        product
    }

    fn count_bmod_tasks(&self) -> u64 {
        // Replays the symbolic factorisation to count bmod invocations.
        let nb = self.config.blocks;
        let mut present: Vec<bool> = self.initial.iter().map(Option::is_some).collect();
        let mut count = 0u64;
        for k in 0..nb {
            for i in k + 1..nb {
                if !present[i * nb + k] {
                    continue;
                }
                for j in k + 1..nb {
                    if present[k * nb + j] {
                        count += 1;
                        present[i * nb + j] = true;
                    }
                }
            }
        }
        count
    }
}

impl BenchmarkApp for SparseLu {
    fn name(&self) -> &'static str {
        "LU"
    }

    fn table_info(&self) -> TableInfo {
        // bmod inputs: two B×B blocks plus the in-out target block.
        let bytes = 3 * self.config.block_elems() * 4;
        TableInfo {
            program_inputs: format!(
                "{0}x{0} blocks of {1}x{1} elements, density {2}",
                self.config.blocks, self.config.block_size, self.config.density
            ),
            task_input_bytes: bytes,
            task_input_types: "float".to_string(),
            memoized_task_type: "bmod".to_string(),
            num_tasks: self.count_bmod_tasks(),
            correctness_on: "L*U-A".to_string(),
        }
    }

    fn memo_spec(&self) -> MemoSpec {
        // Table II: L_training = 30, τ_max = 1 %.
        MemoSpec::approximate().tau(0.01).training_window(30)
    }

    fn run_sequential(&self) -> Vec<f64> {
        Self::to_dense(
            &self.factorise_sequential(),
            self.config.blocks,
            self.config.block_size,
        )
    }

    fn run_tasked(&self, options: &RunOptions) -> AppRun {
        let nb = self.config.blocks;
        let b = self.config.block_size;
        let mut harness = TaskedRun::new(options);
        let rt = harness.runtime();

        // Determine the fill-in pattern up front so every block that will
        // ever be non-null has a region (fill-ins start as zero blocks).
        let mut present: Vec<bool> = self.initial.iter().map(Option::is_some).collect();
        {
            let mut p = present.clone();
            for k in 0..nb {
                for i in k + 1..nb {
                    if !p[i * nb + k] {
                        continue;
                    }
                    for j in k + 1..nb {
                        if p[k * nb + j] {
                            p[i * nb + j] = true;
                        }
                    }
                }
            }
            present = p;
        }
        let regions: Vec<Option<Region<f32>>> = (0..nb * nb)
            .map(|idx| {
                if present[idx] {
                    let data = self.initial[idx]
                        .clone()
                        .unwrap_or_else(|| vec![0.0f32; b * b]);
                    Some(
                        rt.store()
                            .register_typed(format!("A[{}][{}]", idx / nb, idx % nb), data)
                            .expect("unique name"),
                    )
                } else {
                    None
                }
            })
            .collect();

        let lu0_type = rt.register_task_type(
            TaskTypeBuilder::new("lu0", move |ctx| {
                let mut diag = ctx.arg::<f32>(0);
                lu0(&mut diag, b);
                ctx.out(0, &diag);
            })
            .inout::<f32>()
            .build(),
        );
        let fwd_type = rt.register_task_type(
            TaskTypeBuilder::new("fwd", move |ctx| {
                let diag = ctx.arg::<f32>(0);
                let mut block = ctx.arg::<f32>(1);
                fwd(&diag, &mut block, b);
                ctx.out(1, &block);
            })
            .arg::<f32>()
            .inout::<f32>()
            .build(),
        );
        let bdiv_type = rt.register_task_type(
            TaskTypeBuilder::new("bdiv", move |ctx| {
                let diag = ctx.arg::<f32>(0);
                let mut block = ctx.arg::<f32>(1);
                bdiv(&diag, &mut block, b);
                ctx.out(1, &block);
            })
            .arg::<f32>()
            .inout::<f32>()
            .build(),
        );
        let bmod_type = rt.register_task_type(
            TaskTypeBuilder::new("bmod", move |ctx| {
                let row = ctx.arg::<f32>(0);
                let col = ctx.arg::<f32>(1);
                let mut target = ctx.arg::<f32>(2);
                bmod(&row, &col, &mut target, b);
                ctx.out(2, &target);
            })
            .arg::<f32>()
            .arg::<f32>()
            .inout::<f32>()
            .memo(self.memo_spec())
            .build(),
        );

        // Presence evolves as in the sequential symbolic pass: a bmod task is
        // submitted once its operands are (or will be) non-null.
        let mut live: Vec<bool> = self.initial.iter().map(Option::is_some).collect();
        harness.start_timer();
        for k in 0..nb {
            // One batch per elimination step: lu0, then the fwd/bdiv panel
            // updates, then the bmod trailing updates — staged in the same
            // order the singleton submissions used, so the dependence graph
            // (and the 1-worker FIFO execution order) is unchanged.
            let diag = regions[self.idx(k, k)].expect("diagonal block present");
            let mut step = harness.runtime().batch().task(lu0_type).reads_writes(&diag);
            for j in k + 1..nb {
                if live[self.idx(k, j)] {
                    let block = regions[self.idx(k, j)].unwrap();
                    step = step.task(fwd_type).reads(&diag).reads_writes(&block);
                }
            }
            for i in k + 1..nb {
                if live[self.idx(i, k)] {
                    let block = regions[self.idx(i, k)].unwrap();
                    step = step.task(bdiv_type).reads(&diag).reads_writes(&block);
                }
            }
            for i in k + 1..nb {
                if !live[self.idx(i, k)] {
                    continue;
                }
                for j in k + 1..nb {
                    if !live[self.idx(k, j)] {
                        continue;
                    }
                    let row = regions[self.idx(i, k)].unwrap();
                    let col = regions[self.idx(k, j)].unwrap();
                    let target = regions[self.idx(i, j)].expect("fill-in region pre-allocated");
                    live[self.idx(i, j)] = true;
                    step = step
                        .task(bmod_type)
                        .reads(&row)
                        .reads(&col)
                        .reads_writes(&target);
                }
            }
            step.submit_all()
                .expect("sparselu submissions match the declared signatures");
        }

        let nb_copy = nb;
        let b_copy = b;
        harness.finish(move |store| {
            let n = nb_copy * b_copy;
            let mut dense = vec![0.0f64; n * n];
            for bi in 0..nb_copy {
                for bj in 0..nb_copy {
                    if let Some(region) = regions[bi * nb_copy + bj] {
                        let block = store.read(region).lock().to_f64_vec();
                        for r in 0..b_copy {
                            for c in 0..b_copy {
                                dense[(bi * b_copy + r) * n + bj * b_copy + c] =
                                    block[r * b_copy + c];
                            }
                        }
                    }
                }
            }
            dense
        })
    }

    fn output_error(&self, output: &[f64]) -> f64 {
        // Application-specific correctness (Eq. 4): |A − L·U|² / |A|².
        let product = self.reconstruct_lu(output);
        lu_residual_error(&self.dense_a, &product)
    }

    fn reference(&self) -> &[f64] {
        self.reference.get_or_init(|| self.run_sequential())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_core::AtmConfig;
    use atm_metrics::euclidean_relative_error;

    #[test]
    fn lu0_factorises_a_small_block_exactly() {
        // A = [[4, 3], [6, 3]] -> L = [[1,0],[1.5,1]], U = [[4,3],[0,-1.5]].
        let mut a = vec![4.0, 3.0, 6.0, 3.0];
        lu0(&mut a, 2);
        assert_eq!(a, vec![4.0, 3.0, 1.5, -1.5]);
    }

    #[test]
    fn bmod_subtracts_the_block_product() {
        let row = vec![1.0, 0.0, 0.0, 1.0]; // identity
        let col = vec![2.0, 3.0, 4.0, 5.0];
        let mut target = vec![10.0, 10.0, 10.0, 10.0];
        bmod(&row, &col, &mut target, 2);
        assert_eq!(target, vec![8.0, 7.0, 6.0, 5.0]);
    }

    #[test]
    fn sequential_factorisation_has_tiny_residual() {
        let app = SparseLu::at_scale(Scale::Tiny);
        let factorised = app.run_sequential();
        let err = app.output_error(&factorised);
        assert!(err < 1e-6, "sequential LU residual too large: {err}");
    }

    #[test]
    fn tasked_matches_sequential_without_atm() {
        let app = SparseLu::at_scale(Scale::Tiny);
        let run = app.run_tasked(&RunOptions::baseline(2));
        let err = euclidean_relative_error(app.reference(), &run.output);
        assert!(err < 1e-10, "taskified LU factorisation mismatch: {err}");
    }

    #[test]
    fn static_atm_keeps_the_residual_tiny() {
        let app = SparseLu::at_scale(Scale::Tiny);
        let run = app.run_tasked(&RunOptions::with_atm(2, AtmConfig::static_atm()));
        let err = app.output_error(&run.output);
        assert!(err < 1e-6, "static ATM LU residual too large: {err}");
    }

    #[test]
    fn static_atm_finds_reuse_from_repeated_block_patterns() {
        let app = SparseLu::at_scale(Scale::Tiny);
        let run = app.run_tasked(&RunOptions::with_atm(1, AtmConfig::static_atm()));
        assert!(
            run.reuse_percent() > 5.0,
            "repeated block patterns must produce bmod reuse, got {:.1}%",
            run.reuse_percent()
        );
    }

    #[test]
    fn bmod_task_count_matches_symbolic_factorisation() {
        let app = SparseLu::at_scale(Scale::Tiny);
        let run = app.run_tasked(&RunOptions::with_atm(1, AtmConfig::static_atm()));
        assert_eq!(run.atm_stats.seen, app.count_bmod_tasks());
    }

    #[test]
    fn reconstruct_lu_of_identity_is_identity() {
        let app = SparseLu::at_scale(Scale::Tiny);
        let n = app.config.matrix_side();
        let mut identity = vec![0.0f64; n * n];
        for i in 0..n {
            identity[i * n + i] = 1.0;
        }
        assert_eq!(app.reconstruct_lu(&identity), identity);
    }
}
