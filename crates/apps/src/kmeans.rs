//! Kmeans: unsupervised clustering of N d-dimensional points into k groups.
//!
//! Each iteration, one `kmeans_calculate` task assigns a block of points to
//! their closest centres and accumulates per-cluster partial sums; a second,
//! non-memoized task type reduces the partial sums into the new centres.
//!
//! Redundancy source (§V-D): the centres change every iteration, so *exact*
//! memoization finds nothing (the paper shows Static ATM slowing Kmeans
//! down). But clusters converge at different speeds: once a centre has
//! (almost) stopped moving, the distance computations of the blocks it
//! dominates are redundant — redundancy that only *approximate* memoization
//! with a small selection percentage `p` can exploit. Kmeans is also the
//! benchmark that needs the larger THT associativity (M = 128) and the
//! relaxed τ_max = 20 % of Table II.

use crate::common::{AppRun, BenchmarkApp, RunOptions, Scale, TableInfo, TaskedRun};
use atm_hash::Xoshiro256StarStar;
use atm_runtime::{MemoSpec, Region, TaskTypeBuilder};
use std::sync::OnceLock;

/// Configuration of a Kmeans instance.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansConfig {
    /// Number of points.
    pub points: usize,
    /// Dimensionality of each point.
    pub dims: usize,
    /// Number of clusters.
    pub clusters: usize,
    /// Points per `kmeans_calculate` task.
    pub block_size: usize,
    /// Number of Lloyd iterations.
    pub iterations: usize,
    /// Workload generator seed.
    pub seed: u64,
}

impl KmeansConfig {
    /// Configuration for a given scale.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Tiny => KmeansConfig {
                points: 2_048,
                dims: 8,
                clusters: 4,
                block_size: 256,
                iterations: 5,
                seed: 0x4B,
            },
            Scale::Small => KmeansConfig {
                points: 16_384,
                dims: 16,
                clusters: 8,
                block_size: 1_024,
                iterations: 10,
                seed: 0x4B,
            },
            // The paper: 2·10⁶ points, 16 centres, 100 dimensions, 39,063
            // kmeans_calculate tasks, 219,716 bytes of task input.
            Scale::Paper => KmeansConfig {
                points: 2_000_000,
                dims: 100,
                clusters: 16,
                block_size: 512,
                iterations: 20,
                seed: 0x4B,
            },
        }
    }

    /// Number of point blocks (= `kmeans_calculate` tasks per iteration).
    pub fn blocks(&self) -> usize {
        self.points.div_ceil(self.block_size)
    }
}

impl Default for KmeansConfig {
    fn default() -> Self {
        Self::for_scale(Scale::Small)
    }
}

/// Computes the per-cluster partial sums and counts of one block of points.
///
/// The output layout is `clusters × dims` sums followed by `clusters` counts.
pub fn assign_block(points: &[f32], centers: &[f32], dims: usize, clusters: usize) -> Vec<f32> {
    debug_assert_eq!(centers.len(), clusters * dims);
    let mut partial = vec![0.0f32; clusters * dims + clusters];
    for point in points.chunks_exact(dims) {
        let mut best = 0usize;
        let mut best_dist = f32::INFINITY;
        for c in 0..clusters {
            let center = &centers[c * dims..(c + 1) * dims];
            let mut dist = 0.0f32;
            for (p, q) in point.iter().zip(center) {
                let d = p - q;
                dist += d * d;
            }
            if dist < best_dist {
                best_dist = dist;
                best = c;
            }
        }
        for (j, &p) in point.iter().enumerate() {
            partial[best * dims + j] += p;
        }
        partial[clusters * dims + best] += 1.0;
    }
    partial
}

/// Reduces per-block partial sums into new centres. Clusters that received
/// no points keep their previous centre.
pub fn reduce_centers(
    partials: &[Vec<f32>],
    old_centers: &[f32],
    dims: usize,
    clusters: usize,
) -> Vec<f32> {
    let mut sums = vec![0.0f32; clusters * dims];
    let mut counts = vec![0.0f32; clusters];
    for partial in partials {
        for c in 0..clusters {
            for j in 0..dims {
                sums[c * dims + j] += partial[c * dims + j];
            }
            counts[c] += partial[clusters * dims + c];
        }
    }
    let mut new_centers = old_centers.to_vec();
    for c in 0..clusters {
        if counts[c] > 0.0 {
            for j in 0..dims {
                new_centers[c * dims + j] = sums[c * dims + j] / counts[c];
            }
        }
    }
    new_centers
}

/// A generated Kmeans problem instance.
pub struct Kmeans {
    config: KmeansConfig,
    /// All points, `dims` floats per point.
    points: Vec<f32>,
    /// Initial centres.
    initial_centers: Vec<f32>,
    reference: OnceLock<Vec<f64>>,
}

impl Kmeans {
    /// Generates points around `clusters` well-separated true centres.
    pub fn new(config: KmeansConfig) -> Self {
        assert!(config.points > 0 && config.dims > 0 && config.clusters > 0);
        let mut rng = Xoshiro256StarStar::new(config.seed);
        // True cluster centres on a coarse grid, clearly separated.
        let true_centers: Vec<Vec<f32>> = (0..config.clusters)
            .map(|c| {
                (0..config.dims)
                    .map(|j| ((c * 7 + j * 3) % 13) as f32 * 2.0)
                    .collect()
            })
            .collect();
        // The clusters overlap substantially (σ = 2.5 against a grid spacing
        // of 2): boundary points keep switching clusters for many Lloyd
        // iterations, so the centres never become bit-identical between
        // iterations — which is why exact memoization cannot help Kmeans and
        // only approximate memoization can (the paper's observation).
        let mut points = Vec::with_capacity(config.points * config.dims);
        for i in 0..config.points {
            let center = &true_centers[i % config.clusters];
            for &coord in center {
                points.push(coord + rng.next_gaussian() as f32 * 2.5);
            }
        }
        // Initial centres: `clusters` points drawn from the *same* true
        // cluster (indices 0, k, 2k, … all fall on cluster 0 because the
        // generator cycles through the true centres). This is a deliberately
        // poor initialisation: Lloyd's algorithm needs many iterations to
        // spread the centres out, so the centres keep changing throughout
        // the run and exact memoization finds nothing — matching the paper's
        // observation that only approximation helps Kmeans.
        let mut initial_centers = Vec::with_capacity(config.clusters * config.dims);
        for c in 0..config.clusters {
            let idx = c * config.clusters;
            initial_centers.extend_from_slice(&points[idx * config.dims..(idx + 1) * config.dims]);
        }
        Kmeans {
            config,
            points,
            initial_centers,
            reference: OnceLock::new(),
        }
    }

    /// Builds the default instance for a scale.
    pub fn at_scale(scale: Scale) -> Self {
        Self::new(KmeansConfig::for_scale(scale))
    }

    /// The configuration of this instance.
    pub fn config(&self) -> &KmeansConfig {
        &self.config
    }

    fn block_ranges(&self) -> Vec<std::ops::Range<usize>> {
        let n = self.config.points;
        let bs = self.config.block_size;
        (0..self.config.blocks())
            .map(|b| (b * bs)..((b + 1) * bs).min(n))
            .collect()
    }

    fn partial_len(&self) -> usize {
        self.config.clusters * self.config.dims + self.config.clusters
    }
}

impl BenchmarkApp for Kmeans {
    fn name(&self) -> &'static str {
        "Kmeans"
    }

    fn table_info(&self) -> TableInfo {
        // Task inputs: the block of points plus the centres.
        let bytes = (self.config.block_size * self.config.dims
            + self.config.clusters * self.config.dims)
            * 4;
        TableInfo {
            program_inputs: format!(
                "{} points, {} centers, {} dimensions, {} iterations",
                self.config.points, self.config.clusters, self.config.dims, self.config.iterations
            ),
            task_input_bytes: bytes,
            task_input_types: "float, int".to_string(),
            memoized_task_type: "kmeans_calculate".to_string(),
            num_tasks: (self.config.blocks() * self.config.iterations) as u64,
            correctness_on: "Centers Vector".to_string(),
        }
    }

    fn memo_spec(&self) -> MemoSpec {
        // Table II: L_training = 15, τ_max = 20 %. The points block
        // (argument 0) is a repeated, never-changing program input whose
        // identity must be preserved exactly; only the converging centres
        // (argument 1) benefit from approximate hashing, so the spec pins
        // the points argument to exact precision.
        MemoSpec::approximate()
            .tau(0.20)
            .training_window(15)
            .arg_exact(0)
    }

    fn run_sequential(&self) -> Vec<f64> {
        let d = self.config.dims;
        let k = self.config.clusters;
        let mut centers = self.initial_centers.clone();
        for _ in 0..self.config.iterations {
            let partials: Vec<Vec<f32>> = self
                .block_ranges()
                .iter()
                .map(|r| assign_block(&self.points[r.start * d..r.end * d], &centers, d, k))
                .collect();
            centers = reduce_centers(&partials, &centers, d, k);
        }
        centers.iter().map(|&c| f64::from(c)).collect()
    }

    fn run_tasked(&self, options: &RunOptions) -> AppRun {
        let d = self.config.dims;
        let k = self.config.clusters;
        let mut harness = TaskedRun::new(options);
        let rt = harness.runtime();
        let ranges = self.block_ranges();

        let point_regions: Vec<Region<f32>> = ranges
            .iter()
            .enumerate()
            .map(|(b, r)| {
                rt.store()
                    .register_typed(
                        format!("points[{b}]"),
                        self.points[r.start * d..r.end * d].to_vec(),
                    )
                    .expect("unique name")
            })
            .collect();
        let centers_region = rt
            .store()
            .register_typed("centers", self.initial_centers.clone())
            .expect("unique name");
        let partial_regions: Vec<Region<f32>> = (0..ranges.len())
            .map(|b| {
                rt.store()
                    .register_zeros(format!("partials[{b}]"), self.partial_len())
                    .expect("unique name")
            })
            .collect();

        let calculate = rt.register_task_type(
            TaskTypeBuilder::new("kmeans_calculate", move |ctx| {
                let points = ctx.arg::<f32>(0);
                let centers = ctx.arg::<f32>(1);
                let partial = assign_block(&points, &centers, d, k);
                ctx.out(2, &partial);
            })
            .arg::<f32>()
            .arg::<f32>()
            .out::<f32>()
            .memo(self.memo_spec())
            .build(),
        );
        let reduce = rt.register_task_type(
            TaskTypeBuilder::new("kmeans_reduce", move |ctx| {
                // Accesses: 0 = centres (inout), 1.. = partial blocks (in).
                let old_centers = ctx.arg::<f32>(0);
                let partials: Vec<Vec<f32>> = (1..ctx.accesses().len())
                    .map(|i| ctx.arg::<f32>(i))
                    .collect();
                let new_centers = reduce_centers(&partials, &old_centers, d, k);
                ctx.out(0, &new_centers);
            })
            .inout::<f32>()
            .variadic_args::<f32>(1)
            .build(),
        );

        harness.start_timer();
        for _iter in 0..self.config.iterations {
            // One batch per iteration: all calculate tasks plus the fan-in
            // reduce task, submitted with one validation/dependence pass.
            let mut wave = harness.runtime().batch();
            for (points, partial) in point_regions.iter().zip(&partial_regions) {
                wave = wave
                    .task(calculate)
                    .reads(points)
                    .reads(&centers_region)
                    .writes(partial);
            }
            wave = wave.task(reduce).reads_writes(&centers_region);
            for partial in &partial_regions {
                wave = wave.reads(partial);
            }
            wave.submit_all()
                .expect("kmeans submissions match the declared signatures");
        }

        harness.finish(move |store| store.read(centers_region).lock().to_f64_vec())
    }

    fn reference(&self) -> &[f64] {
        self.reference.get_or_init(|| self.run_sequential())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_core::AtmConfig;
    use atm_metrics::euclidean_relative_error;

    #[test]
    fn assign_block_matches_hand_computation() {
        // Two 2-d points, two centres at (0,0) and (10,10).
        let points = vec![1.0, 1.0, 9.0, 9.0];
        let centers = vec![0.0, 0.0, 10.0, 10.0];
        let partial = assign_block(&points, &centers, 2, 2);
        // Point (1,1) -> cluster 0, point (9,9) -> cluster 1.
        assert_eq!(partial, vec![1.0, 1.0, 9.0, 9.0, 1.0, 1.0]);
    }

    #[test]
    fn reduce_centers_averages_assigned_points() {
        let partials = vec![
            vec![2.0, 4.0, 0.0, 0.0, 2.0, 0.0],
            vec![4.0, 8.0, 0.0, 0.0, 2.0, 0.0],
        ];
        let old = vec![9.0, 9.0, 5.0, 5.0];
        let new = reduce_centers(&partials, &old, 2, 2);
        // Cluster 0: sums (6, 12) over 4 points -> (1.5, 3). Cluster 1 kept.
        assert_eq!(new, vec![1.5, 3.0, 5.0, 5.0]);
    }

    #[test]
    fn sequential_kmeans_produces_distinct_in_range_centres() {
        let app = Kmeans::at_scale(Scale::Tiny);
        let centers = app.run_sequential();
        let d = app.config.dims;
        let k = app.config.clusters;
        // Centres must stay inside the data range (the grid spans 0..26 plus noise).
        assert!(
            centers.iter().all(|&x| (-10.0..36.0).contains(&x)),
            "centres escaped the data range"
        );
        // And the k centres must be pairwise distinct (no cluster collapse).
        for a in 0..k {
            for b in a + 1..k {
                let dist: f64 = (0..d)
                    .map(|j| (centers[a * d + j] - centers[b * d + j]).powi(2))
                    .sum::<f64>();
                assert!(dist > 1e-3, "centres {a} and {b} collapsed onto each other");
            }
        }
    }

    #[test]
    fn tasked_matches_sequential_without_atm() {
        let app = Kmeans::at_scale(Scale::Tiny);
        let run = app.run_tasked(&RunOptions::baseline(2));
        let err = euclidean_relative_error(app.reference(), &run.output);
        assert!(err < 1e-12, "taskified Kmeans output mismatch: {err}");
    }

    #[test]
    fn static_atm_is_exact_but_finds_little_reuse() {
        let app = Kmeans::at_scale(Scale::Tiny);
        let run = app.run_tasked(&RunOptions::with_atm(2, AtmConfig::static_atm()));
        assert_eq!(
            app.output_error(&run.output),
            0.0,
            "static ATM must be exact"
        );
        // The centres change every iteration, so exact memoization finds
        // much less than approximate memoization could — the paper's
        // observation for Kmeans.
        assert!(
            run.reuse_percent() < 50.0,
            "exact reuse should be scarce for Kmeans, got {:.1}%",
            run.reuse_percent()
        );
    }

    #[test]
    fn dynamic_atm_stays_within_the_relaxed_error_budget() {
        let app = Kmeans::at_scale(Scale::Tiny);
        let run = app.run_tasked(&RunOptions::with_atm(1, AtmConfig::dynamic_atm()));
        let correctness = app.correctness_percent(&run.output);
        assert!(
            correctness > 80.0,
            "Kmeans dynamic correctness too low: {correctness:.2}%"
        );
    }

    #[test]
    fn table_info_counts_only_calculate_tasks() {
        let app = Kmeans::at_scale(Scale::Tiny);
        let info = app.table_info();
        assert_eq!(
            info.num_tasks,
            (app.config.blocks() * app.config.iterations) as u64
        );
        assert_eq!(info.memoized_task_type, "kmeans_calculate");
    }
}
