//! Blackscholes: analytic pricing of a portfolio of European options.
//!
//! The PARSEC/PARSECSs benchmark computes the Black–Scholes closed-form
//! price of every option in a portfolio, repeating the whole computation for
//! a number of outer iterations. Its redundancy lives in the program input:
//! the native input file replicates a small pool of distinct option records
//! millions of times, so whole blocks of the portfolio are identical — and
//! every iteration after the first recomputes exactly the same prices
//! (§V-D: "Blackscholes repeats the same algorithm multiple times, the last
//! iterations being redundant"; reuse is 50 % even with a single iteration).
//!
//! Task decomposition: the portfolio is split into blocks; one `bs_thread`
//! task prices one block per iteration (inputs: the block's option records;
//! outputs: the block's prices). `bs_thread` is the memoized task type.

use crate::common::{AppRun, BenchmarkApp, RunOptions, Scale, TableInfo, TaskedRun};
use atm_hash::Xoshiro256StarStar;
use atm_runtime::{MemoSpec, Region, TaskTypeBuilder};
use std::sync::OnceLock;

/// Number of `f32` fields per option record.
pub const FIELDS: usize = 6;
const F_SPOT: usize = 0;
const F_STRIKE: usize = 1;
const F_RATE: usize = 2;
const F_VOLATILITY: usize = 3;
const F_TIME: usize = 4;
const F_TYPE: usize = 5; // 0.0 = call, 1.0 = put

/// Configuration of a Blackscholes instance.
#[derive(Debug, Clone, PartialEq)]
pub struct BlackscholesConfig {
    /// Total number of options in the portfolio.
    pub options: usize,
    /// Options per block (one task prices one block).
    pub block_size: usize,
    /// Number of distinct option records in the generator pool; the
    /// portfolio cycles through the pool, which is what makes whole blocks
    /// repeat (the PARSEC native input behaves the same way).
    pub distinct_options: usize,
    /// Number of outer iterations over the portfolio (PARSEC's `NUM_RUNS`).
    pub iterations: usize,
    /// Seed of the workload generator.
    pub seed: u64,
}

impl BlackscholesConfig {
    /// Configuration for a given scale.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Tiny => BlackscholesConfig {
                options: 1_024,
                block_size: 128,
                distinct_options: 256,
                iterations: 3,
                seed: 0xB5,
            },
            Scale::Small => BlackscholesConfig {
                options: 65_536,
                block_size: 2_048,
                distinct_options: 8_192,
                iterations: 4,
                seed: 0xB5,
            },
            // The paper uses the PARSEC native input: 10 million options,
            // 393,216 bytes of task input, 6,109 bs_thread tasks.
            Scale::Paper => BlackscholesConfig {
                options: 10_000_000,
                block_size: 16_384,
                distinct_options: 1_000,
                iterations: 100,
                seed: 0xB5,
            },
        }
    }

    /// Number of blocks (tasks per iteration).
    pub fn blocks(&self) -> usize {
        self.options.div_ceil(self.block_size)
    }
}

impl Default for BlackscholesConfig {
    fn default() -> Self {
        Self::for_scale(Scale::Small)
    }
}

/// The cumulative distribution function of the standard normal distribution,
/// implemented with the same polynomial approximation PARSEC uses.
fn cndf(x: f32) -> f32 {
    let sign = x < 0.0;
    let x_abs = x.abs();
    let exp_term = (-0.5 * x_abs * x_abs).exp() * 0.398_942_3_f32;
    let k = 1.0 / (1.0 + 0.231_641_9 * x_abs);
    let poly = k
        * (0.319_381_53
            + k * (-0.356_563_78 + k * (1.781_477_9 + k * (-1.821_255_9 + k * 1.330_274_5))));
    let value = 1.0 - exp_term * poly;
    if sign {
        1.0 - value
    } else {
        value
    }
}

/// Prices one option with the Black–Scholes closed form.
pub fn price_option(record: &[f32]) -> f32 {
    let s = record[F_SPOT];
    let k = record[F_STRIKE];
    let r = record[F_RATE];
    let v = record[F_VOLATILITY];
    let t = record[F_TIME];
    let is_put = record[F_TYPE] > 0.5;

    let sqrt_t = t.sqrt();
    let d1 = ((s / k).ln() + (r + 0.5 * v * v) * t) / (v * sqrt_t);
    let d2 = d1 - v * sqrt_t;
    let n_d1 = cndf(d1);
    let n_d2 = cndf(d2);
    let discounted_k = k * (-r * t).exp();
    if is_put {
        discounted_k * (1.0 - n_d2) - s * (1.0 - n_d1)
    } else {
        s * n_d1 - discounted_k * n_d2
    }
}

/// Prices a block of options (the `bs_thread` kernel body).
pub fn price_block(options: &[f32], prices: &mut [f32]) {
    debug_assert_eq!(options.len(), prices.len() * FIELDS);
    for (i, price) in prices.iter_mut().enumerate() {
        *price = price_option(&options[i * FIELDS..(i + 1) * FIELDS]);
    }
}

/// A generated Blackscholes problem instance.
pub struct Blackscholes {
    config: BlackscholesConfig,
    /// Option records, `FIELDS` floats per option.
    portfolio: Vec<f32>,
    reference: OnceLock<Vec<f64>>,
}

impl Blackscholes {
    /// Generates the portfolio for the given configuration.
    pub fn new(config: BlackscholesConfig) -> Self {
        assert!(config.options > 0 && config.block_size > 0 && config.iterations > 0);
        let mut rng = Xoshiro256StarStar::new(config.seed);
        let distinct = config.distinct_options.max(1);

        // The pool of distinct option records.
        let mut pool = Vec::with_capacity(distinct * FIELDS);
        for _ in 0..distinct {
            let spot = rng.range_f64(10.0, 200.0) as f32;
            let strike = rng.range_f64(10.0, 200.0) as f32;
            let rate = rng.range_f64(0.01, 0.1) as f32;
            let volatility = rng.range_f64(0.05, 0.65) as f32;
            let time = rng.range_f64(0.25, 10.0) as f32;
            let kind = if rng.next_f64() < 0.5 { 0.0 } else { 1.0 };
            pool.extend_from_slice(&[spot, strike, rate, volatility, time, kind]);
        }

        // The portfolio cycles through the pool (repetitive program input).
        let mut portfolio = Vec::with_capacity(config.options * FIELDS);
        for i in 0..config.options {
            let j = i % distinct;
            portfolio.extend_from_slice(&pool[j * FIELDS..(j + 1) * FIELDS]);
        }

        Blackscholes {
            config,
            portfolio,
            reference: OnceLock::new(),
        }
    }

    /// Builds the default instance for a scale.
    pub fn at_scale(scale: Scale) -> Self {
        Self::new(BlackscholesConfig::for_scale(scale))
    }

    /// The configuration of this instance.
    pub fn config(&self) -> &BlackscholesConfig {
        &self.config
    }

    fn block_ranges(&self) -> Vec<std::ops::Range<usize>> {
        let n = self.config.options;
        let bs = self.config.block_size;
        (0..self.config.blocks())
            .map(|b| (b * bs)..(((b + 1) * bs).min(n)))
            .collect()
    }
}

impl BenchmarkApp for Blackscholes {
    fn name(&self) -> &'static str {
        "Blackscholes"
    }

    fn table_info(&self) -> TableInfo {
        TableInfo {
            program_inputs: format!(
                "{} options ({} distinct), {} iterations",
                self.config.options, self.config.distinct_options, self.config.iterations
            ),
            task_input_bytes: self.config.block_size * FIELDS * 4,
            task_input_types: "float".to_string(),
            memoized_task_type: "bs_thread".to_string(),
            num_tasks: (self.config.blocks() * self.config.iterations) as u64,
            correctness_on: "Prices Vector".to_string(),
        }
    }

    fn memo_spec(&self) -> MemoSpec {
        // Table II: L_training = 15, τ_max = 1 %.
        MemoSpec::approximate().tau(0.01).training_window(15)
    }

    fn run_sequential(&self) -> Vec<f64> {
        let mut prices = vec![0.0f32; self.config.options];
        for _ in 0..self.config.iterations {
            for range in self.block_ranges() {
                let opt_range = range.start * FIELDS..range.end * FIELDS;
                price_block(&self.portfolio[opt_range], &mut prices[range]);
            }
        }
        prices.iter().map(|&p| f64::from(p)).collect()
    }

    fn run_tasked(&self, options: &RunOptions) -> AppRun {
        let mut harness = TaskedRun::new(options);
        let rt = harness.runtime();
        let ranges = self.block_ranges();

        // One input region per block of option records, one output region
        // per block of prices.
        let option_regions: Vec<Region<f32>> = ranges
            .iter()
            .enumerate()
            .map(|(b, range)| {
                let data = self.portfolio[range.start * FIELDS..range.end * FIELDS].to_vec();
                rt.store()
                    .register_typed(format!("options[{b}]"), data)
                    .expect("unique name")
            })
            .collect();
        let price_regions: Vec<Region<f32>> = ranges
            .iter()
            .enumerate()
            .map(|(b, range)| {
                rt.store()
                    .register_zeros(format!("prices[{b}]"), range.len())
                    .expect("unique name")
            })
            .collect();

        // The pricing task: the approximation policy travels with the task
        // type, declared next to the kernel and the access signature.
        let bs_thread = rt.register_task_type(
            TaskTypeBuilder::new("bs_thread", |ctx| {
                let options = ctx.arg::<f32>(0);
                let mut prices = vec![0.0f32; options.len() / FIELDS];
                price_block(&options, &mut prices);
                ctx.out(1, &prices);
            })
            .arg::<f32>()
            .out::<f32>()
            .memo(self.memo_spec())
            .build(),
        );

        harness.start_timer();
        for _iter in 0..self.config.iterations {
            // One batched submission per sweep over the portfolio: the
            // runtime validates and wires the whole wave with its internal
            // locks taken once.
            let mut wave = harness.runtime().tasks(bs_thread);
            for (opt_region, price_region) in option_regions.iter().zip(&price_regions) {
                wave = wave.next().reads(opt_region).writes(price_region);
            }
            wave.submit_all()
                .expect("bs_thread submissions match the declared signature");
        }

        harness.finish(move |store| {
            let mut out = Vec::new();
            for region in &price_regions {
                out.extend(store.read(*region).lock().to_f64_vec());
            }
            out
        })
    }

    fn reference(&self) -> &[f64] {
        self.reference.get_or_init(|| self.run_sequential())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_core::AtmConfig;
    use atm_metrics::euclidean_relative_error;

    #[test]
    fn cndf_is_a_cdf() {
        assert!((cndf(0.0) - 0.5).abs() < 1e-3);
        assert!(cndf(5.0) > 0.999);
        assert!(cndf(-5.0) < 0.001);
        assert!((cndf(1.0) - 0.8413).abs() < 1e-3);
        assert!((cndf(-1.0) - 0.1587).abs() < 1e-3);
    }

    #[test]
    fn call_put_parity_holds() {
        // C - P = S - K·e^(-rT) for the same parameters.
        let base = [100.0f32, 95.0, 0.05, 0.3, 1.0, 0.0];
        let mut put = base;
        put[F_TYPE] = 1.0;
        let call_price = price_option(&base);
        let put_price = price_option(&put);
        let parity = 100.0f32 - 95.0 * (-0.05f32 * 1.0).exp();
        assert!(
            (call_price - put_price - parity).abs() < 1e-3,
            "put-call parity violated: C={call_price} P={put_price} expected diff {parity}"
        );
    }

    #[test]
    fn deep_in_the_money_call_approaches_intrinsic_value() {
        let record = [200.0f32, 10.0, 0.01, 0.1, 0.5, 0.0];
        let price = price_option(&record);
        let intrinsic = 200.0 - 10.0 * (-0.01f32 * 0.5).exp();
        assert!((price - intrinsic).abs() < 0.5);
    }

    #[test]
    fn generator_is_deterministic_and_repetitive() {
        let a = Blackscholes::at_scale(Scale::Tiny);
        let b = Blackscholes::at_scale(Scale::Tiny);
        assert_eq!(a.portfolio, b.portfolio);
        // The portfolio cycles through the pool: option 0 equals option `distinct`.
        let d = a.config.distinct_options;
        assert_eq!(
            a.portfolio[0..FIELDS],
            a.portfolio[d * FIELDS..(d + 1) * FIELDS]
        );
    }

    #[test]
    fn tasked_matches_sequential_without_atm() {
        let app = Blackscholes::at_scale(Scale::Tiny);
        let run = app.run_tasked(&RunOptions::baseline(2));
        let err = euclidean_relative_error(app.reference(), &run.output);
        assert!(
            err < 1e-12,
            "taskified output must equal the sequential reference, err={err}"
        );
        assert_eq!(run.runtime_stats.executed, run.runtime_stats.submitted);
    }

    #[test]
    fn static_atm_is_exact_and_finds_reuse() {
        let app = Blackscholes::at_scale(Scale::Tiny);
        let run = app.run_tasked(&RunOptions::with_atm(2, AtmConfig::static_atm()));
        assert_eq!(
            app.output_error(&run.output),
            0.0,
            "static ATM must be bit-exact"
        );
        assert!(
            run.reuse_percent() > 50.0,
            "repetitive portfolio + iterations must produce >50% reuse, got {:.1}%",
            run.reuse_percent()
        );
        assert!(run.atm_memory_bytes > 0);
    }

    #[test]
    fn dynamic_atm_trains_and_keeps_correctness_high() {
        let app = Blackscholes::at_scale(Scale::Tiny);
        let run = app.run_tasked(&RunOptions::with_atm(1, AtmConfig::dynamic_atm()));
        let correctness = app.correctness_percent(&run.output);
        assert!(
            correctness > 90.0,
            "dynamic ATM correctness too low: {correctness:.2}%"
        );
        assert!(
            run.atm_stats.training_hits > 0,
            "the training phase must have verified some hits"
        );
    }

    #[test]
    fn table_info_matches_configuration() {
        let app = Blackscholes::at_scale(Scale::Tiny);
        let info = app.table_info();
        assert_eq!(info.memoized_task_type, "bs_thread");
        assert_eq!(
            info.num_tasks,
            (app.config.blocks() * app.config.iterations) as u64
        );
        assert_eq!(info.task_input_bytes, app.config.block_size * FIELDS * 4);
    }
}
