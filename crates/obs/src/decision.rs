//! The memo-decision audit trail.
//!
//! Every decision the memoization stack takes — THT hit, IKT deferral,
//! miss→execute, training accept/reject, adaptive down-shift, store
//! admission denial, eviction — is emitted as a structured
//! [`DecisionRecord`] into per-worker ring buffers. Memory is bounded: when
//! a ring is full the oldest record is overwritten and a drop counter
//! ticks, while the per-`(type, decision)` *counts* stay exact regardless
//! of drops, so aggregate reconciliation against the engine's own counters
//! holds even on runs long enough to wrap the rings.

use atm_sync::atomic::{AtomicU64, Ordering};
use atm_sync::Mutex;
use std::collections::HashMap;

/// Default per-shard ring capacity (records kept per worker shard).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// What the memoization stack decided about one task (or store entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoDecision {
    /// Steady-state THT hit: outputs copied, execution bypassed.
    ThtHit,
    /// Same key already in flight: deferred behind the producer.
    IktDefer,
    /// No usable entry: the task executes.
    MissExecute,
    /// Training-phase comparison accepted (output within τ).
    TrainingAccept,
    /// Training-phase comparison rejected (some output beyond τ).
    TrainingReject,
    /// The adaptive controller halved `p` again after an over-precise
    /// window.
    DownShift,
    /// The store's admission control refused the entry.
    AdmissionDenied,
    /// The store evicted a resident entry.
    Eviction,
}

impl MemoDecision {
    /// Every decision kind, in display order.
    pub const ALL: [MemoDecision; 8] = [
        MemoDecision::ThtHit,
        MemoDecision::IktDefer,
        MemoDecision::MissExecute,
        MemoDecision::TrainingAccept,
        MemoDecision::TrainingReject,
        MemoDecision::DownShift,
        MemoDecision::AdmissionDenied,
        MemoDecision::Eviction,
    ];

    /// Stable snake_case name used in JSONL dumps and trace args.
    pub fn name(self) -> &'static str {
        match self {
            MemoDecision::ThtHit => "tht_hit",
            MemoDecision::IktDefer => "ikt_defer",
            MemoDecision::MissExecute => "miss_execute",
            MemoDecision::TrainingAccept => "training_accept",
            MemoDecision::TrainingReject => "training_reject",
            MemoDecision::DownShift => "down_shift",
            MemoDecision::AdmissionDenied => "admission_denied",
            MemoDecision::Eviction => "eviction",
        }
    }
}

/// One structured decision event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionRecord {
    /// Raw task type id (`TaskTypeId::index()`).
    pub task_type: u32,
    /// Raw task id (`TaskId::index()`). For store events this is the
    /// producer task of the entry concerned.
    pub task_id: u64,
    /// The decision taken.
    pub decision: MemoDecision,
    /// The decision's driving quantity: observed relative error for
    /// training comparisons, benefit/charge for store decisions, 0 where
    /// nothing applies.
    pub metric_value: f64,
    /// The error tolerance τ in effect (0 for exact specs).
    pub tau: f64,
    /// The selection percentage `p` in effect, as a fraction.
    pub p: f64,
    /// Timestamp on the run's trace clock (`Tracer::now_ns`).
    pub t_ns: u64,
}

/// One worker shard: a bounded overwrite-oldest ring plus the exact
/// per-`(type, decision)` counts.
struct DecisionShard {
    ring: Vec<DecisionRecord>,
    /// Overwrite cursor once the ring reached capacity.
    next: usize,
    counts: HashMap<(u32, MemoDecision), u64>,
}

/// A cache-padded shard wrapper so neighbouring shards' lock words do not
/// share a line.
#[repr(align(128))]
struct PaddedShard {
    inner: Mutex<DecisionShard>,
    dropped: AtomicU64,
}

/// The sharded decision log.
pub struct DecisionLog {
    shards: Vec<PaddedShard>,
    capacity: usize,
}

impl DecisionLog {
    /// Creates a log with `capacity` records per worker shard.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            shards: (0..crate::hist::SHARDS)
                .map(|_| PaddedShard {
                    inner: Mutex::new(DecisionShard {
                        ring: Vec::new(),
                        next: 0,
                        counts: HashMap::new(),
                    }),
                    dropped: AtomicU64::new(0),
                })
                .collect(),
            capacity,
        }
    }

    /// Creates a log with the default per-shard capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// Records one decision on `worker`'s shard.
    pub fn record(&self, worker: usize, record: DecisionRecord) {
        let shard = &self.shards[worker % self.shards.len()];
        let mut inner = shard.inner.lock();
        *inner
            .counts
            .entry((record.task_type, record.decision))
            .or_insert(0) += 1;
        if inner.ring.len() < self.capacity {
            inner.ring.push(record);
        } else {
            let next = inner.next;
            inner.ring[next] = record;
            inner.next = (next + 1) % self.capacity;
            shard.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Point-in-time copy: retained records (oldest first, merged across
    /// shards by `t_ns`), exact counts, and the drop total.
    pub fn snapshot(&self) -> DecisionSnapshot {
        let mut records = Vec::new();
        let mut counts: HashMap<(u32, MemoDecision), u64> = HashMap::new();
        let mut dropped = 0u64;
        for shard in &self.shards {
            dropped += shard.dropped.load(Ordering::Relaxed);
            let inner = shard.inner.lock();
            // Oldest-first order within a wrapped ring: cursor..end, then
            // start..cursor.
            records.extend_from_slice(&inner.ring[inner.next..]);
            records.extend_from_slice(&inner.ring[..inner.next]);
            for (k, v) in &inner.counts {
                *counts.entry(*k).or_insert(0) += v;
            }
        }
        records.sort_by_key(|r| r.t_ns);
        DecisionSnapshot {
            records,
            counts,
            dropped,
        }
    }
}

impl Default for DecisionLog {
    fn default() -> Self {
        Self::new()
    }
}

/// Owned snapshot of the decision log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecisionSnapshot {
    /// Retained records, oldest first across all shards.
    pub records: Vec<DecisionRecord>,
    /// Exact per-`(task_type, decision)` counts — unaffected by ring drops.
    pub counts: HashMap<(u32, MemoDecision), u64>,
    /// Records overwritten because their ring was full.
    pub dropped: u64,
}

impl DecisionSnapshot {
    /// Total decisions ever recorded (retained + dropped).
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// The exact count of one `(type, decision)` pair.
    pub fn count(&self, task_type: u32, decision: MemoDecision) -> u64 {
        self.counts
            .get(&(task_type, decision))
            .copied()
            .unwrap_or(0)
    }

    /// Per-decision counts of one task type.
    pub fn counts_for(&self, task_type: u32) -> HashMap<MemoDecision, u64> {
        self.counts
            .iter()
            .filter(|((t, _), _)| *t == task_type)
            .map(|((_, d), v)| (*d, *v))
            .collect()
    }

    /// The retained records of one task type, oldest first.
    pub fn records_for(&self, task_type: u32) -> Vec<DecisionRecord> {
        self.records
            .iter()
            .filter(|r| r.task_type == task_type)
            .copied()
            .collect()
    }

    /// Dumps the retained records as JSON Lines, one object per record.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&format!(
                "{{\"task_type\":{},\"task_id\":{},\"decision\":\"{}\",\
                 \"metric_value\":{},\"tau\":{},\"p\":{},\"t_ns\":{}}}\n",
                r.task_type,
                r.task_id,
                r.decision.name(),
                crate::chrome::json_f64(r.metric_value),
                crate::chrome::json_f64(r.tau),
                crate::chrome::json_f64(r.p),
                r.t_ns
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(task_type: u32, task_id: u64, decision: MemoDecision, t_ns: u64) -> DecisionRecord {
        DecisionRecord {
            task_type,
            task_id,
            decision,
            metric_value: 0.5,
            tau: 0.2,
            p: 1.0,
            t_ns,
        }
    }

    #[test]
    fn records_merge_sorted_by_time() {
        let log = DecisionLog::new();
        log.record(1, rec(0, 1, MemoDecision::MissExecute, 30));
        log.record(0, rec(0, 2, MemoDecision::ThtHit, 10));
        log.record(2, rec(1, 3, MemoDecision::IktDefer, 20));
        let snap = log.snapshot();
        let times: Vec<u64> = snap.records.iter().map(|r| r.t_ns).collect();
        assert_eq!(times, vec![10, 20, 30]);
        assert_eq!(snap.count(0, MemoDecision::ThtHit), 1);
        assert_eq!(snap.counts_for(0).len(), 2);
        assert_eq!(snap.records_for(1).len(), 1);
        assert_eq!(snap.dropped, 0);
    }

    /// Property: the ring never holds more than its capacity, and every
    /// overflow is accounted for in the drop counter — retained + dropped
    /// equals the number of records offered, exactly.
    #[test]
    fn ring_is_bounded_with_exact_drop_accounting() {
        let cap = 16;
        let log = DecisionLog::with_capacity(cap);
        let offered = 100u64;
        for i in 0..offered {
            // All onto one shard to force wrapping.
            log.record(3, rec(7, i, MemoDecision::MissExecute, i));
        }
        let snap = log.snapshot();
        assert_eq!(snap.records.len(), cap);
        assert_eq!(snap.dropped, offered - cap as u64);
        assert_eq!(snap.total(), offered);
        assert_eq!(snap.count(7, MemoDecision::MissExecute), offered);
        // Overwrite-oldest: the survivors are the newest `cap` records, in
        // order.
        let ids: Vec<u64> = snap.records.iter().map(|r| r.task_id).collect();
        let expected: Vec<u64> = (offered - cap as u64..offered).collect();
        assert_eq!(ids, expected);
    }

    /// Property: bounded memory and exact counts hold under concurrent
    /// recording from many threads.
    #[test]
    fn concurrent_recording_bounds_memory_and_counts() {
        use std::sync::Arc;
        let cap = 8;
        let log = Arc::new(DecisionLog::with_capacity(cap));
        let threads = 8u64;
        let per_thread = 1000u64;
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        log.record(
                            w as usize,
                            rec(9, i, MemoDecision::Eviction, w * per_thread + i),
                        );
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        let snap = log.snapshot();
        assert!(snap.records.len() <= cap * crate::hist::SHARDS);
        assert_eq!(snap.total(), threads * per_thread);
        assert_eq!(
            snap.records.len() as u64 + snap.dropped,
            threads * per_thread
        );
    }

    #[test]
    fn jsonl_emits_one_line_per_record() {
        let log = DecisionLog::new();
        log.record(0, rec(2, 11, MemoDecision::TrainingAccept, 5));
        log.record(0, rec(2, 12, MemoDecision::DownShift, 6));
        let dump = log.snapshot().to_jsonl();
        assert_eq!(dump.lines().count(), 2);
        assert!(dump.contains("\"decision\":\"training_accept\""));
        assert!(dump.contains("\"task_id\":12"));
    }
}
