//! Chrome Trace Event Format writer.
//!
//! Emits the JSON-array flavour of the [Trace Event Format] that
//! `chrome://tracing` and <https://ui.perfetto.dev> load directly: complete
//! events (`ph: "X"`) for intervals, counter events (`ph: "C"`) for tracks
//! like ready-queue depth, and metadata events (`ph: "M"`) to name
//! processes and threads. Timestamps are microseconds; callers pass
//! nanoseconds from the run's trace clock and the writer converts.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

/// Serialises an `f64` as JSON (`null` for non-finite values).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn ts_us(ns: u64) -> String {
    // Keep nanosecond precision: Chrome's ts unit is µs but fractional
    // values are accepted.
    format!("{:.3}", ns as f64 / 1000.0)
}

/// Builds a Chrome-trace JSON array event by event.
///
/// Events should be appended in non-decreasing timestamp order per `tid`;
/// the builder does not reorder.
#[derive(Debug, Default)]
pub struct ChromeTraceBuilder {
    events: Vec<String>,
}

impl ChromeTraceBuilder {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events appended so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no event was appended.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names the process `pid` (metadata event).
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
    }

    /// Names the thread `tid` of process `pid` (metadata event).
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
    }

    /// Appends a complete event (`ph: "X"`): an interval `[start_ns,
    /// end_ns]` on thread `tid`. `args` entries are `(key, raw JSON value)`
    /// pairs — values must already be valid JSON (use [`json_f64`] /
    /// [`json_escape`]).
    pub fn complete(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        start_ns: u64,
        end_ns: u64,
        args: &[(&str, String)],
    ) {
        let dur = end_ns.saturating_sub(start_ns);
        let args_json = if args.is_empty() {
            String::new()
        } else {
            let body: Vec<String> = args
                .iter()
                .map(|(k, v)| format!("\"{}\":{v}", json_escape(k)))
                .collect();
            format!(",\"args\":{{{}}}", body.join(","))
        };
        self.events.push(format!(
            "{{\"ph\":\"X\",\"name\":\"{}\",\"pid\":{pid},\"tid\":{tid},\
             \"ts\":{},\"dur\":{}{args_json}}}",
            json_escape(name),
            ts_us(start_ns),
            ts_us(dur),
        ));
    }

    /// Appends a counter sample (`ph: "C"`): the track `name` takes the
    /// value `value` at `t_ns`.
    pub fn counter(&mut self, pid: u64, tid: u64, name: &str, t_ns: u64, value: f64) {
        self.events.push(format!(
            "{{\"ph\":\"C\",\"name\":\"{}\",\"pid\":{pid},\"tid\":{tid},\
             \"ts\":{},\"args\":{{\"value\":{}}}}}",
            json_escape(name),
            ts_us(t_ns),
            json_f64(value)
        ));
    }

    /// Finishes the trace: the complete JSON array, one event per line.
    pub fn finish(self) -> String {
        let mut out = String::from("[\n");
        out.push_str(&self.events.join(",\n"));
        out.push_str("\n]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_carry_required_keys() {
        let mut b = ChromeTraceBuilder::new();
        b.process_name(1, "atm");
        b.thread_name(1, 2, "worker 0");
        b.complete(
            1,
            2,
            "cholesky_potrf",
            1000,
            2500,
            &[("decision", "\"tht_hit\"".into())],
        );
        b.counter(1, 99, "ready_depth", 1500, 4.0);
        assert_eq!(b.len(), 4);
        let json = b.finish();
        for line in json.lines().filter(|l| l.starts_with('{')) {
            let line = line.trim_end_matches(',');
            assert!(line.contains("\"ph\":"), "missing ph in {line}");
            assert!(line.contains("\"pid\":"), "missing pid in {line}");
            assert!(line.contains("\"tid\":"), "missing tid in {line}");
        }
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("\n]\n"));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":1.500"));
        assert!(json.contains("\"decision\":\"tht_hit\""));
        assert!(json.contains("\"value\":4"));
    }

    #[test]
    fn escaping_and_null_handling() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(0.25), "0.25");
    }

    #[test]
    fn empty_trace_is_still_an_array() {
        let b = ChromeTraceBuilder::new();
        assert!(b.is_empty());
        assert_eq!(b.finish(), "[\n\n]\n");
    }
}
