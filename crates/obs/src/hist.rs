//! Log-linear latency histograms with per-worker shards.
//!
//! The bucketing follows the HdrHistogram scheme without the dependency:
//! values below `2 * SUB_BUCKETS` get one bucket each (exact), and every
//! further power-of-two range is split into `SUB_BUCKETS` linear
//! sub-buckets, so the relative quantisation error of any recorded value is
//! bounded by `1 / SUB_BUCKETS` regardless of magnitude. With
//! `SUB_BITS = 5` (32 sub-buckets) the bound is ~3.1% and the whole `u64`
//! range fits in [`BUCKETS`] buckets — small enough to keep one bucket
//! array per worker shard and merge on snapshot.
//!
//! Recording is a single relaxed `fetch_add` on the recording worker's own
//! cache-padded shard, the same single-writer discipline `RuntimeStats`
//! uses; reads sum across shards into an owned [`HistogramSnapshot`].

use atm_sync::atomic::{AtomicU64, Ordering};

/// Number of linear sub-buckets per power-of-two range, as a shift.
pub const SUB_BITS: u32 = 5;
/// Number of linear sub-buckets per power-of-two range.
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Bound on the relative quantisation error of any recorded value.
pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / SUB_BUCKETS as f64;
/// Total bucket count covering the full `u64` range: the two exact
/// power-of-two ranges plus `SUB_BUCKETS` sub-buckets for each of the
/// remaining 58 ranges (highest index `((58 + 1) << SUB_BITS) + 31`).
pub const BUCKETS: usize = ((64 - SUB_BITS) as usize + 1) << SUB_BITS;

/// Number of shards. Workers map onto shards by `worker % SHARDS`; the
/// count matches the runtime tracer's event shards so any realistic worker
/// count gets a private lane.
pub const SHARDS: usize = 16;

/// Bucket index of a value.
fn bucket_index(value: u64) -> usize {
    if value < 2 * SUB_BUCKETS {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let shift = msb - SUB_BITS;
    ((((shift + 1) as usize) << SUB_BITS) + ((value >> shift) - SUB_BUCKETS) as usize)
        .min(BUCKETS - 1)
}

/// Inclusive lower bound of a bucket.
fn bucket_low(index: usize) -> u64 {
    if index < (2 * SUB_BUCKETS) as usize {
        return index as u64;
    }
    let shift = (index >> SUB_BITS) as u32 - 1;
    let sub = (index as u64 & (SUB_BUCKETS - 1)) + SUB_BUCKETS;
    sub << shift
}

/// Representative (midpoint) value of a bucket, used when reading
/// quantiles back out.
fn bucket_mid(index: usize) -> u64 {
    let low = bucket_low(index);
    if index < (2 * SUB_BUCKETS) as usize {
        return low; // exact buckets
    }
    let shift = (index >> SUB_BITS) as u32 - 1;
    low + (1u64 << shift) / 2
}

/// One worker's private bucket array. The hot counters live behind a
/// cache-line-aligned header so two workers never write the same line
/// through the struct head; the bucket `Vec` is its own allocation.
#[repr(align(128))]
struct Shard {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Shard {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// A concurrent log-linear histogram sharded per worker.
pub struct Histogram {
    shards: Vec<Shard>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram with [`SHARDS`] worker shards.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
        }
    }

    /// Records one value on `worker`'s shard (any `worker` index is valid;
    /// it is reduced modulo the shard count).
    pub fn record(&self, worker: usize, value: u64) {
        let shard = &self.shards[worker % SHARDS];
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(value, Ordering::Relaxed);
        shard.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Sums every shard into an owned snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::empty();
        for shard in &self.shards {
            snap.count += shard.count.load(Ordering::Relaxed);
            // `fetch_add` on the shard already wraps; stay consistent
            // instead of panicking on astronomically large totals.
            snap.sum = snap.sum.wrapping_add(shard.sum.load(Ordering::Relaxed));
            for (acc, bucket) in snap.buckets.iter_mut().zip(&shard.buckets) {
                *acc += bucket.load(Ordering::Relaxed);
            }
        }
        snap
    }
}

/// Owned point-in-time copy of a [`Histogram`], mergeable and queryable.
#[derive(Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`BUCKETS`]).
    buckets: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
}

impl std::fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .finish()
    }
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Folds another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        for (acc, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *acc += b;
        }
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value's bucket lower bound (0 when empty).
    pub fn min(&self) -> u64 {
        self.buckets
            .iter()
            .position(|&c| c > 0)
            .map_or(0, bucket_low)
    }

    /// Largest recorded value's bucket representative (0 when empty).
    pub fn max(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, bucket_mid)
    }

    /// The value at quantile `q` in `[0, 1]`: the representative value of
    /// the bucket holding the `ceil(q * count)`-th recorded value. Returns
    /// 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_mid(i);
            }
        }
        self.max()
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn small_values_are_exact() {
        for v in 0..2 * SUB_BUCKETS {
            let i = bucket_index(v);
            assert_eq!(bucket_low(i), v);
            assert_eq!(bucket_mid(i), v);
        }
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every value maps into a bucket whose [low, next low) range
        // contains it, across the whole dynamic range.
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            for probe in [v, v + v / 3] {
                let i = bucket_index(probe);
                assert!(bucket_low(i) <= probe, "low({i}) > {probe}");
                if i + 1 < BUCKETS {
                    assert!(bucket_low(i + 1) > probe, "next low({i}) <= {probe}");
                }
            }
            v *= 2;
        }
    }

    /// Property: the representative value of any recorded value's bucket is
    /// within the configured relative error bound.
    #[test]
    fn bucket_error_is_within_configured_precision() {
        let mut seed = 0x9e3779b97f4a7c15u64;
        for _ in 0..20_000 {
            // xorshift64* — deterministic pseudo-random probe values.
            seed ^= seed >> 12;
            seed ^= seed << 25;
            seed ^= seed >> 27;
            let v = seed.wrapping_mul(0x2545f4914f6cdd1d) >> (seed % 48);
            let mid = bucket_mid(bucket_index(v));
            let err = (mid as f64 - v as f64).abs() / (v.max(1) as f64);
            assert!(
                err <= RELATIVE_ERROR_BOUND,
                "value {v}: representative {mid} off by {err:.4} > {RELATIVE_ERROR_BOUND}"
            );
        }
    }

    /// Property: quantiles are monotone in `q`.
    #[test]
    fn quantiles_are_monotone() {
        let h = Histogram::new();
        let mut seed = 42u64;
        for _ in 0..5_000 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.record((seed % 7) as usize, seed >> (seed % 40));
        }
        let snap = h.snapshot();
        let mut last = 0u64;
        for step in 0..=100 {
            let q = step as f64 / 100.0;
            let v = snap.quantile(q);
            assert!(
                v >= last,
                "quantile({q}) = {v} < quantile of previous step {last}"
            );
            last = v;
        }
        assert!(snap.min() <= snap.quantile(0.0));
        assert!(snap.quantile(1.0) <= snap.max());
    }

    /// Property: no recorded value is lost or duplicated when many workers
    /// record concurrently onto different shards and the shards are merged.
    #[test]
    fn concurrent_recording_conserves_counts() {
        let h = Arc::new(Histogram::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record(w, (w as u64 + 1) * 1000 + i % 97);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, threads as u64 * per_thread);
        // The per-bucket counts must account for every record too.
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    }

    #[test]
    fn merge_adds_counts_and_preserves_quantiles() {
        let a = Histogram::new();
        let b = Histogram::new();
        for i in 0..1000 {
            a.record(0, i);
            b.record(1, 10 * i);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 2000);
        assert_eq!(merged.sum, a.snapshot().sum + b.snapshot().sum);
        assert!(merged.p999() >= a.snapshot().p999());
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p999(), 0);
        assert_eq!(snap.min(), 0);
        assert_eq!(snap.max(), 0);
        assert_eq!(snap.mean(), 0.0);
    }
}
