//! The metrics registry: the fixed set of latency histograms the stack
//! records into, plus general-purpose sharded counters and gauges.

use crate::hist::{Histogram, HistogramSnapshot, SHARDS};
use atm_sync::atomic::{AtomicU64, Ordering};

/// The latency distributions the stack records, one histogram each. All
/// values are nanosecond durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatencyMetric {
    /// Task end-to-end latency: submission to finish (memoized bypasses
    /// included — they are the point).
    TaskLatency,
    /// Kernel execution time of tasks that actually ran.
    Kernel,
    /// Master-thread time spent inside one submit call (per task).
    Submit,
    /// Time spent probing the THT on the memo-lookup path.
    MemoLookup,
    /// Full store insert time (admission + placement + budget eviction).
    StoreInsert,
    /// Time spent inside budget-eviction rounds.
    StoreEvict,
    /// End-to-end request latency of the serving tier: admission to the
    /// completion of the request's last task (see `atm-serve`).
    Request,
    /// Worker time spent in one release cycle: finishing a task (plus its
    /// producer-completed deferred waiters), publishing the released
    /// successors to the ready queue and retiring the outstanding count.
    Release,
}

impl LatencyMetric {
    /// Every metric, in display order.
    pub const ALL: [LatencyMetric; 8] = [
        LatencyMetric::TaskLatency,
        LatencyMetric::Kernel,
        LatencyMetric::Submit,
        LatencyMetric::MemoLookup,
        LatencyMetric::StoreInsert,
        LatencyMetric::StoreEvict,
        LatencyMetric::Request,
        LatencyMetric::Release,
    ];

    /// Stable snake_case name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            LatencyMetric::TaskLatency => "task_latency",
            LatencyMetric::Kernel => "kernel",
            LatencyMetric::Submit => "submit",
            LatencyMetric::MemoLookup => "memo_lookup",
            LatencyMetric::StoreInsert => "store_insert",
            LatencyMetric::StoreEvict => "store_evict",
            LatencyMetric::Request => "request",
            LatencyMetric::Release => "release",
        }
    }

    fn index(self) -> usize {
        match self {
            LatencyMetric::TaskLatency => 0,
            LatencyMetric::Kernel => 1,
            LatencyMetric::Submit => 2,
            LatencyMetric::MemoLookup => 3,
            LatencyMetric::StoreInsert => 4,
            LatencyMetric::StoreEvict => 5,
            LatencyMetric::Request => 6,
            LatencyMetric::Release => 7,
        }
    }
}

/// The histogram set behind [`LatencyMetric`].
pub struct MetricsRegistry {
    hists: Vec<Histogram>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Creates empty histograms for every metric.
    pub fn new() -> Self {
        Self {
            hists: (0..LatencyMetric::ALL.len())
                .map(|_| Histogram::new())
                .collect(),
        }
    }

    /// Records `ns` into `metric` on `worker`'s shard.
    pub fn record(&self, metric: LatencyMetric, worker: usize, ns: u64) {
        self.hists[metric.index()].record(worker, ns);
    }

    /// Snapshots every histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            hists: self.hists.iter().map(Histogram::snapshot).collect(),
        }
    }
}

/// Owned snapshot of every latency histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    hists: Vec<HistogramSnapshot>,
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl MetricsSnapshot {
    /// A snapshot with every histogram empty.
    pub fn empty() -> Self {
        Self {
            hists: (0..LatencyMetric::ALL.len())
                .map(|_| HistogramSnapshot::empty())
                .collect(),
        }
    }

    /// The snapshot of one metric's histogram.
    pub fn get(&self, metric: LatencyMetric) -> &HistogramSnapshot {
        &self.hists[metric.index()]
    }

    /// Folds another snapshot into this one, metric by metric.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (acc, h) in self.hists.iter_mut().zip(&other.hists) {
            acc.merge(h);
        }
    }
}

/// A cache-padded shard of one counter.
#[repr(align(128))]
#[derive(Default)]
struct CounterShard {
    value: AtomicU64,
}

/// A monotone counter sharded per worker: `add` is one relaxed `fetch_add`
/// on the caller's own cache line, `value` sums the shards.
pub struct Counter {
    shards: Vec<CounterShard>,
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| CounterShard::default()).collect(),
        }
    }

    /// Adds `n` on `worker`'s shard.
    pub fn add(&self, worker: usize, n: u64) {
        self.shards[worker % SHARDS]
            .value
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Sum across all shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.value.load(Ordering::Relaxed))
            .sum()
    }
}

/// A last-writer-wins gauge (e.g. current byte occupancy).
#[derive(Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Creates a zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Reads the gauge.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_routes_by_metric() {
        let reg = MetricsRegistry::new();
        reg.record(LatencyMetric::Kernel, 0, 100);
        reg.record(LatencyMetric::Kernel, 1, 200);
        reg.record(LatencyMetric::Submit, 0, 5);
        let snap = reg.snapshot();
        assert_eq!(snap.get(LatencyMetric::Kernel).count, 2);
        assert_eq!(snap.get(LatencyMetric::Submit).count, 1);
        assert_eq!(snap.get(LatencyMetric::TaskLatency).count, 0);
    }

    #[test]
    fn snapshot_merge_accumulates() {
        let reg = MetricsRegistry::new();
        reg.record(LatencyMetric::TaskLatency, 0, 1000);
        let mut acc = MetricsSnapshot::empty();
        acc.merge(&reg.snapshot());
        acc.merge(&reg.snapshot());
        assert_eq!(acc.get(LatencyMetric::TaskLatency).count, 2);
    }

    #[test]
    fn counter_and_gauge() {
        let c = Counter::new();
        c.add(0, 2);
        c.add(31, 3);
        assert_eq!(c.value(), 5);
        let g = Gauge::new();
        g.set(7);
        g.set(4);
        assert_eq!(g.value(), 4);
    }

    #[test]
    fn metric_names_are_unique() {
        let names: std::collections::HashSet<_> =
            LatencyMetric::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), LatencyMetric::ALL.len());
    }
}
