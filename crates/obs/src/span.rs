//! Per-task spans and time-series counter samples for trace export.

use atm_sync::Mutex;

/// One task's lifetime on a worker, as exported into the trace: the
/// interval from the worker picking the task up to finishing it (memoized
/// bypasses included — their spans are the visibly-short ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskSpan {
    /// Worker that processed the task.
    pub worker: usize,
    /// Raw task id.
    pub task_id: u64,
    /// Raw task type id.
    pub task_type: u32,
    /// Start on the trace clock.
    pub start_ns: u64,
    /// End on the trace clock.
    pub end_ns: u64,
}

/// Sharded append-only span log (one `Mutex<Vec>` lane per worker shard,
/// merged and sorted on read).
pub struct SpanLog {
    shards: Vec<Mutex<Vec<TaskSpan>>>,
}

impl SpanLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self {
            shards: (0..crate::hist::SHARDS)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        }
    }

    /// Records one span on `worker`'s shard.
    pub fn record(&self, span: TaskSpan) {
        self.shards[span.worker % self.shards.len()]
            .lock()
            .push(span);
    }

    /// All spans, sorted by `(start_ns, task_id)`.
    pub fn spans(&self) -> Vec<TaskSpan> {
        let mut all: Vec<TaskSpan> = self.shards.iter().flat_map(|s| s.lock().clone()).collect();
        all.sort_by_key(|s| (s.start_ns, s.task_id));
        all
    }
}

impl Default for SpanLog {
    fn default() -> Self {
        Self::new()
    }
}

/// One `(t_ns, value)` sample of a counter track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSample {
    /// Timestamp on the trace clock.
    pub t_ns: u64,
    /// Sampled value.
    pub value: u64,
}

/// A time-series of counter samples (e.g. store byte occupancy), sharded
/// like [`SpanLog`].
pub struct CounterSeries {
    shards: Vec<Mutex<Vec<CounterSample>>>,
}

impl CounterSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self {
            shards: (0..crate::hist::SHARDS)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        }
    }

    /// Appends a sample on `worker`'s shard.
    pub fn sample(&self, worker: usize, t_ns: u64, value: u64) {
        self.shards[worker % self.shards.len()]
            .lock()
            .push(CounterSample { t_ns, value });
    }

    /// All samples, sorted by time.
    pub fn samples(&self) -> Vec<CounterSample> {
        let mut all: Vec<CounterSample> =
            self.shards.iter().flat_map(|s| s.lock().clone()).collect();
        all.sort_by_key(|s| s.t_ns);
        all
    }
}

impl Default for CounterSeries {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_merge_sorted() {
        let log = SpanLog::new();
        log.record(TaskSpan {
            worker: 1,
            task_id: 2,
            task_type: 0,
            start_ns: 50,
            end_ns: 60,
        });
        log.record(TaskSpan {
            worker: 0,
            task_id: 1,
            task_type: 0,
            start_ns: 10,
            end_ns: 20,
        });
        let spans = log.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].task_id, 1);
        assert_eq!(spans[1].worker, 1);
    }

    #[test]
    fn counter_samples_sorted_by_time() {
        let series = CounterSeries::new();
        series.sample(2, 30, 100);
        series.sample(0, 10, 50);
        series.sample(1, 20, 75);
        let samples = series.samples();
        assert_eq!(
            samples.iter().map(|s| s.t_ns).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
    }
}
