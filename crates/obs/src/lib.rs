//! `atm-obs` — the unified observability layer of the ATM stack.
//!
//! One [`Observability`] handle is shared by the runtime, the ATM engine,
//! and the memo store. It bundles the three pillars:
//!
//! * **Latency histograms** ([`MetricsRegistry`]): per-worker cache-padded
//!   shards of dependency-free HdrHistogram-style log-linear buckets, one
//!   per [`LatencyMetric`] (task end-to-end, kernel, submit-path, memo
//!   lookup, store insert/evict), with `p50/p90/p99/p999` extraction.
//! * **Memo-decision audit trail** ([`DecisionLog`]): every interceptor and
//!   store decision as a structured record in bounded per-worker rings with
//!   exact per-type counts and a drop counter, dumpable as JSONL.
//! * **Trace export** ([`ChromeTraceBuilder`] plus the [`SpanLog`] /
//!   [`CounterSeries`] raw material): Chrome Trace Event Format JSON that
//!   <https://ui.perfetto.dev> opens directly.
//!
//! Everything short-circuits when the handle is disabled, so an attached
//! but disabled `Observability` stays off the hot paths' critical budget.
//!
//! # Quick start
//!
//! ```
//! use atm_obs::{
//!     ChromeTraceBuilder, DecisionRecord, LatencyMetric, MemoDecision, Observability,
//! };
//!
//! let obs = Observability::enabled();
//!
//! // Hot paths record durations and decisions on their own worker's shard.
//! obs.record_latency(LatencyMetric::TaskLatency, /* worker */ 0, 12_500);
//! obs.record_latency(LatencyMetric::TaskLatency, 1, 48_000);
//! obs.record_decision(
//!     0,
//!     DecisionRecord {
//!         task_type: 0,
//!         task_id: 7,
//!         decision: MemoDecision::ThtHit,
//!         metric_value: 0.0,
//!         tau: 0.2,
//!         p: 0.5,
//!         t_ns: 12_500,
//!     },
//! );
//!
//! // Readers take owned snapshots.
//! let latency = obs.metrics().get(LatencyMetric::TaskLatency).clone();
//! assert_eq!(latency.count, 2);
//! assert!(latency.p50() <= latency.p99());
//! let decisions = obs.decisions();
//! assert_eq!(decisions.count(0, MemoDecision::ThtHit), 1);
//!
//! // And export a Perfetto-loadable trace.
//! let mut trace = ChromeTraceBuilder::new();
//! trace.process_name(1, "atm-runtime");
//! trace.thread_name(1, 1, "worker 0");
//! trace.complete(1, 1, "my_task", 0, 12_500, &[("decision", "\"tht_hit\"".into())]);
//! let json = trace.finish();
//! assert!(json.contains("\"ph\":\"X\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod decision;
pub mod hist;
pub mod metrics;
pub mod span;

pub use chrome::{json_escape, json_f64, ChromeTraceBuilder};
pub use decision::{DecisionLog, DecisionRecord, DecisionSnapshot, MemoDecision};
pub use hist::{Histogram, HistogramSnapshot, RELATIVE_ERROR_BOUND};
pub use metrics::{Counter, Gauge, LatencyMetric, MetricsRegistry, MetricsSnapshot};
pub use span::{CounterSample, CounterSeries, SpanLog, TaskSpan};

use atm_sync::Mutex;
use std::collections::HashMap;

/// The shared observability handle: one per run, threaded through runtime,
/// engine, and store. All recording methods are no-ops when the handle is
/// disabled.
pub struct Observability {
    enabled: bool,
    metrics: MetricsRegistry,
    decisions: DecisionLog,
    spans: SpanLog,
    store_bytes: CounterSeries,
    type_names: Mutex<HashMap<u32, String>>,
}

impl Observability {
    /// Creates a handle; `enabled = false` makes every record a no-op.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            metrics: MetricsRegistry::new(),
            decisions: DecisionLog::new(),
            spans: SpanLog::new(),
            store_bytes: CounterSeries::new(),
            type_names: Mutex::new(HashMap::new()),
        }
    }

    /// An enabled handle.
    pub fn enabled() -> Self {
        Self::new(true)
    }

    /// A disabled handle: same wiring, every record short-circuits.
    pub fn disabled() -> Self {
        Self::new(false)
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a nanosecond duration into `metric` on `worker`'s shard.
    #[inline]
    pub fn record_latency(&self, metric: LatencyMetric, worker: usize, ns: u64) {
        if self.enabled {
            self.metrics.record(metric, worker, ns);
        }
    }

    /// Records a memo decision on `worker`'s shard.
    #[inline]
    pub fn record_decision(&self, worker: usize, record: DecisionRecord) {
        if self.enabled {
            self.decisions.record(worker, record);
        }
    }

    /// Records a task span.
    #[inline]
    pub fn record_span(&self, span: TaskSpan) {
        if self.enabled {
            self.spans.record(span);
        }
    }

    /// Samples the store's byte occupancy at `t_ns`.
    #[inline]
    pub fn sample_store_bytes(&self, worker: usize, t_ns: u64, bytes: u64) {
        if self.enabled {
            self.store_bytes.sample(worker, t_ns, bytes);
        }
    }

    /// Registers the display name of a task type id (used by trace export).
    pub fn note_type_name(&self, task_type: u32, name: &str) {
        if self.enabled {
            self.type_names
                .lock()
                .entry(task_type)
                .or_insert_with(|| name.to_string());
        }
    }

    /// The registered name of a task type, if any.
    pub fn type_name(&self, task_type: u32) -> Option<String> {
        self.type_names.lock().get(&task_type).cloned()
    }

    /// Snapshot of every latency histogram.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Snapshot of the decision log.
    pub fn decisions(&self) -> DecisionSnapshot {
        self.decisions.snapshot()
    }

    /// All recorded task spans, sorted by start time.
    pub fn spans(&self) -> Vec<TaskSpan> {
        self.spans.spans()
    }

    /// All store byte-occupancy samples, sorted by time.
    pub fn store_bytes_samples(&self) -> Vec<CounterSample> {
        self.store_bytes.samples()
    }
}

impl std::fmt::Debug for Observability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observability")
            .field("enabled", &self.enabled)
            .finish_non_exhaustive()
    }
}

/// Cross-layer view of the ATM engine's aggregate counters, as reported
/// through the runtime's `Observation`-style unified snapshots. A plain
/// data carrier so
/// lower layers need not depend on the engine crate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineObservation {
    /// Tasks of memoizable types handled by the engine.
    pub seen: u64,
    /// Tasks bypassed with outputs copied from the THT.
    pub tht_bypassed: u64,
    /// Tasks deferred to an in-flight producer.
    pub ikt_deferred: u64,
    /// THT hits verified by execution during training.
    pub training_hits: u64,
    /// Tasks executed (memoizable types only).
    pub executed: u64,
    /// Nanoseconds spent computing hash keys.
    pub hash_ns: u64,
    /// Nanoseconds spent copying outputs.
    pub copy_ns: u64,
}

impl EngineObservation {
    /// Tasks whose execution was avoided.
    pub fn reused(&self) -> u64 {
        self.tht_bypassed + self.ikt_deferred
    }
}

/// Cross-layer view of the memo store's counters (see `EngineObservation`
/// for why this is a plain data carrier).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreObservation {
    /// Successful lookups.
    pub hits: u64,
    /// Failed lookups.
    pub misses: u64,
    /// Entries stored (including replacements).
    pub insertions: u64,
    /// Entries evicted.
    pub evictions: u64,
    /// Entries refused by admission control.
    pub rejected_admissions: u64,
    /// Estimated kernel nanoseconds saved by replayed hits.
    pub saved_ns: u64,
    /// Bytes currently charged against the budget.
    pub resident_bytes: u64,
    /// Entries currently resident.
    pub entries: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Observability::disabled();
        obs.record_latency(LatencyMetric::Kernel, 0, 100);
        obs.record_decision(
            0,
            DecisionRecord {
                task_type: 0,
                task_id: 0,
                decision: MemoDecision::MissExecute,
                metric_value: 0.0,
                tau: 0.0,
                p: 1.0,
                t_ns: 1,
            },
        );
        obs.record_span(TaskSpan {
            worker: 0,
            task_id: 0,
            task_type: 0,
            start_ns: 0,
            end_ns: 1,
        });
        obs.sample_store_bytes(0, 1, 64);
        obs.note_type_name(0, "t");
        assert!(!obs.is_enabled());
        assert_eq!(obs.metrics().get(LatencyMetric::Kernel).count, 0);
        assert_eq!(obs.decisions().total(), 0);
        assert!(obs.spans().is_empty());
        assert!(obs.store_bytes_samples().is_empty());
        assert!(obs.type_name(0).is_none());
    }

    #[test]
    fn enabled_handle_round_trips() {
        let obs = Observability::enabled();
        obs.record_latency(LatencyMetric::MemoLookup, 2, 400);
        obs.sample_store_bytes(0, 10, 1024);
        obs.note_type_name(3, "cholesky_potrf");
        obs.note_type_name(3, "other"); // first registration wins
        assert_eq!(obs.metrics().get(LatencyMetric::MemoLookup).count, 1);
        assert_eq!(
            obs.store_bytes_samples(),
            vec![CounterSample {
                t_ns: 10,
                value: 1024
            }]
        );
        assert_eq!(obs.type_name(3).as_deref(), Some("cholesky_potrf"));
    }
}
