//! Dependency-free CPU pinning for worker threads.
//!
//! The `scaling` experiment needs to separate scheduler cost from cache and
//! NUMA placement effects, which requires pinning each worker thread to one
//! CPU. The workspace carries no external dependencies, and the runtime
//! crates are `#![forbid(unsafe_code)]` — so the single `unsafe` construct
//! pinning needs (a raw `sched_setaffinity(2)` syscall; there is no stable
//! safe API for it in `std`) lives here, in a crate small enough to audit
//! in one sitting (see the `unsafe` audit in `CONCURRENCY.md`).
//!
//! On Linux x86_64/aarch64, [`pin_current_thread`] issues the syscall
//! directly through inline assembly (no libc). Everywhere else it returns
//! [`PinError::Unsupported`] and callers degrade to a no-op — affinity is
//! an optimisation knob, never a correctness requirement.

#![warn(missing_docs)]
// The entire point of this crate is to confine the workspace's only
// process-level unsafe block (the raw syscall below); everything around it
// is safe code.
#![deny(unsafe_op_in_unsafe_fn)]

use std::fmt;

/// Largest CPU index addressable by the affinity mask this crate passes to
/// the kernel (a fixed 1024-bit mask, matching glibc's `cpu_set_t`).
pub const MAX_CPUS: usize = 1024;

/// Why a pin request could not be honoured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinError {
    /// Pinning is not implemented for this OS/architecture (or the CPU
    /// index exceeds [`MAX_CPUS`]). Callers should treat this as "run
    /// unpinned", not as a failure.
    Unsupported,
    /// The kernel rejected the request; carries the negated `errno` (e.g.
    /// `EINVAL` when the CPU does not exist or is outside the allowed set).
    Syscall(i32),
}

impl fmt::Display for PinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PinError::Unsupported => write!(f, "cpu pinning unsupported on this platform"),
            PinError::Syscall(errno) => write!(f, "sched_setaffinity failed (errno {errno})"),
        }
    }
}

impl std::error::Error for PinError {}

/// Whether [`pin_current_thread`] can succeed on this platform at all.
pub fn supported() -> bool {
    cfg!(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))
}

/// Pins the calling thread to `cpu`, so the kernel scheduler keeps it (and
/// its cache working set) on that core.
///
/// Returns [`PinError::Unsupported`] off Linux x86_64/aarch64 or for a CPU
/// index ≥ [`MAX_CPUS`], and [`PinError::Syscall`] when the kernel refuses
/// (nonexistent CPU, cgroup cpuset restrictions, …). Both are benign: the
/// thread simply keeps running unpinned.
pub fn pin_current_thread(cpu: usize) -> Result<(), PinError> {
    if cpu >= MAX_CPUS {
        return Err(PinError::Unsupported);
    }
    let mut mask = [0usize; MAX_CPUS / usize::BITS as usize];
    mask[cpu / usize::BITS as usize] = 1usize << (cpu % usize::BITS as usize);
    // pid 0 means "the calling thread" for sched_setaffinity.
    match sched_setaffinity_raw(0, std::mem::size_of_val(&mask), mask.as_ptr()) {
        ret if ret >= 0 => Ok(()),
        err => Err(PinError::Syscall(err as i32)),
    }
}

/// Raw `sched_setaffinity(2)`, Linux x86_64. Returns 0 on success or the
/// negated errno on failure (raw syscalls do not set `errno`).
///
/// SAFETY argument (the workspace's only process-level unsafe block): the
/// syscall reads `len` bytes from `mask`, which points at a live, fully
/// initialised stack array of exactly that size; it mutates no userspace
/// memory and only changes the calling thread's kernel scheduling state.
/// The x86_64 `syscall` instruction clobbers `rcx`/`r11`, declared below.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn sched_setaffinity_raw(pid: usize, len: usize, mask: *const usize) -> isize {
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") 203isize => ret, // __NR_sched_setaffinity
            in("rdi") pid,
            in("rsi") len,
            in("rdx") mask,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, preserves_flags),
        );
    }
    ret
}

/// Raw `sched_setaffinity(2)`, Linux aarch64. Same contract as the x86_64
/// variant; `svc 0` with the syscall number in `x8`.
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
fn sched_setaffinity_raw(pid: usize, len: usize, mask: *const usize) -> isize {
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "svc 0",
            in("x8") 122usize, // __NR_sched_setaffinity
            inlateout("x0") pid => ret,
            in("x1") len,
            in("x2") mask,
            options(nostack, preserves_flags),
        );
    }
    ret
}

/// Fallback for platforms without a raw-syscall implementation: always
/// reports [`PinError::Unsupported`] (via a negative sentinel the caller
/// maps; the value itself is never shown to users).
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn sched_setaffinity_raw(_pid: usize, _len: usize, _mask: *const usize) -> isize {
    const ENOSYS: isize = -38;
    ENOSYS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oversized_cpu_index_is_rejected_without_a_syscall() {
        assert_eq!(pin_current_thread(MAX_CPUS), Err(PinError::Unsupported));
        assert_eq!(pin_current_thread(usize::MAX), Err(PinError::Unsupported));
    }

    #[test]
    fn pinning_to_the_current_platform_behaves_as_advertised() {
        let result = pin_current_thread(0);
        if supported() {
            // CPU 0 exists on every Linux machine this suite runs on; a
            // cgroup cpuset could still exclude it, in which case the
            // kernel answers with a clean errno rather than UB.
            match result {
                Ok(()) => {}
                Err(PinError::Syscall(errno)) => assert!(errno < 0, "negated errno, got {errno}"),
                Err(PinError::Unsupported) => panic!("supported() says this platform pins"),
            }
        } else {
            assert_eq!(result, Err(PinError::Unsupported));
        }
    }

    #[test]
    fn nonexistent_cpu_fails_cleanly() {
        if !supported() {
            return;
        }
        // CPU 1023 is addressable by the mask but (on any realistic test
        // machine) not present: the kernel must refuse with EINVAL rather
        // than succeed or crash.
        match pin_current_thread(MAX_CPUS - 1) {
            Err(PinError::Syscall(_)) => {}
            Ok(()) => {} // a 1024-core machine: legal, just unlikely
            Err(PinError::Unsupported) => panic!("index below MAX_CPUS must reach the syscall"),
        }
        // Re-pin to the full default set is not possible through this API;
        // restore a sane mask for later tests in this process by pinning to
        // CPU 0 (tests run single-threaded per process by default).
        let _ = pin_current_thread(0);
    }

    #[test]
    fn pinned_thread_still_runs() {
        let handle = std::thread::spawn(|| {
            let _ = pin_current_thread(0);
            (0..1000u64).sum::<u64>()
        });
        assert_eq!(handle.join().unwrap(), 499_500);
    }
}
