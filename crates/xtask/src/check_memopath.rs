//! `check-memopath`: validates the `BENCH_memopath.json` machine report
//! produced by `atm-eval memopath --json DIR`.
//!
//! The memo-path experiment's contract (see `crates/bench`): both read
//! modes ran (nonzero hits on the seqlock path and on the locked baseline),
//! the A/B ratio `seqlock_over_locked` is present and finite, and the
//! sampled lookup percentiles satisfy `0 < p50 <= p99`. A report that
//! misses any of these means the A/B silently degenerated — one mode never
//! ran, or the latency sampling broke — so CI fails on it. The ratio's
//! *value* is deliberately not gated here: which mode wins depends on the
//! runner's core count, and the performance claim itself is enforced by the
//! ignored acceptance test on >= 4 hardware threads.

use crate::check_trace::{parse_json, Json};

/// Validates the memopath report text; returns a one-line summary on
/// success and a description of the first violated contract on failure.
pub fn check_memopath(text: &str) -> Result<String, String> {
    let root = parse_json(text)?;
    if root.get("id").and_then(Json::as_str) != Some("memopath") {
        return Err("`id` must be \"memopath\"".to_string());
    }
    let metrics = root
        .get("metrics")
        .ok_or_else(|| "no `metrics` object".to_string())?;
    let num = |name: &str| -> Result<f64, String> {
        metrics
            .get(name)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("metric `{name}` missing or not a number"))
    };

    for mode in ["seqlock", "locked"] {
        let hits = num(&format!("{mode}_hits"))?;
        if hits <= 0.0 {
            return Err(format!(
                "the {mode} round recorded no hits: its hit-storm never ran"
            ));
        }
        let rate = num(&format!("{mode}_hits_per_sec"))?;
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(format!(
                "{mode}_hits_per_sec must be positive and finite, got {rate}"
            ));
        }
    }
    let ratio = num("seqlock_over_locked")?;
    if !(ratio > 0.0 && ratio.is_finite()) {
        return Err(format!(
            "seqlock_over_locked must be positive and finite, got {ratio}"
        ));
    }
    let p50 = num("memo_lookup_p50_ns")?;
    let p99 = num("memo_lookup_p99_ns")?;
    if !(p50 > 0.0 && p99 >= p50) {
        return Err(format!(
            "sampled lookup percentiles must satisfy 0 < p50 <= p99, got p50 {p50} / p99 {p99}"
        ));
    }
    Ok(format!(
        "seqlock/locked hit-rate ratio {ratio:.2}, lookup p50 {p50:.0} ns / p99 {p99:.0} ns"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(locked_hits: f64, ratio: &str, p50: f64, p99: f64) -> String {
        format!(
            r#"{{
  "id": "memopath",
  "title": "Memo-path reads",
  "metrics": {{
    "seqlock_hits_per_sec": 19682324.1,
    "seqlock_lookups": 1575936,
    "seqlock_hits": 1575936,
    "locked_hits_per_sec": 23054006.9,
    "locked_lookups": {locked_hits},
    "locked_hits": {locked_hits},
    "seqlock_over_locked": {ratio},
    "memo_lookup_p50_ns": {p50},
    "memo_lookup_p99_ns": {p99}
  }},
  "csv_header": "mode,readers,lookups,hits,hits_per_sec",
  "rows": ["seqlock,4,1575936,1575936,19682324.1", "locked,4,1845760,1845760,23054006.9"]
}}"#
        )
    }

    #[test]
    fn a_conforming_report_passes_with_a_summary() {
        let summary = check_memopath(&sample(1845760.0, "0.85", 71.0, 103.0)).unwrap();
        assert!(summary.contains("ratio 0.85"), "{summary}");
        assert!(summary.contains("p50 71 ns"), "{summary}");
    }

    #[test]
    fn zero_hits_or_bad_ratio_fail() {
        let err = check_memopath(&sample(0.0, "0.85", 71.0, 103.0)).unwrap_err();
        assert!(err.contains("locked round recorded no hits"), "{err}");
        let err = check_memopath(&sample(1845760.0, "0", 71.0, 103.0)).unwrap_err();
        assert!(err.contains("seqlock_over_locked"), "{err}");
    }

    #[test]
    fn missing_or_inverted_percentiles_fail() {
        let err = check_memopath(&sample(1845760.0, "0.85", 103.0, 71.0)).unwrap_err();
        assert!(err.contains("0 < p50 <= p99"), "{err}");
        let missing = sample(1845760.0, "0.85", 71.0, 103.0).replace("memo_lookup_p50_ns", "x");
        assert!(check_memopath(&missing)
            .unwrap_err()
            .contains("memo_lookup_p50_ns"));
    }

    #[test]
    fn wrong_id_and_missing_metrics_fail() {
        let wrong = sample(1845760.0, "0.85", 71.0, 103.0).replace("\"memopath\"", "\"serve\"");
        assert!(check_memopath(&wrong).unwrap_err().contains("id"));
        assert!(check_memopath("{\"id\": \"memopath\"}")
            .unwrap_err()
            .contains("metrics"));
    }
}
