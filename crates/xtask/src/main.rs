//! Repo-local automation, `cargo xtask` style: `cargo run -p xtask -- <command>`.
//!
//! Commands:
//!
//! * `lint-sync` enforces the repo's synchronization discipline: every
//!   lock, condition variable and atomic in production code goes through
//!   `atm-sync`, so that `--cfg atm_check` builds can swap in the
//!   instrumented model types and the checker sees every operation. A raw
//!   `std::sync` primitive anywhere else is invisible to the checker — a
//!   hole in the model — so CI fails on it.
//! * `check-trace FILE` validates a Chrome-trace file produced by
//!   `atm-eval --trace` (see [`check_trace`]).
//! * `check-serve FILE` validates the `BENCH_serve.json` machine report
//!   produced by `atm-eval serve --json` (see [`check_serve`]).
//! * `check-memopath FILE` validates the `BENCH_memopath.json` machine
//!   report produced by `atm-eval memopath --json` (see [`check_memopath`]).
//!
//! The lint is a line-based substring scan, deliberately dependency-free
//! (no syn, no regex crate): false positives are possible in principle but
//! have not occurred, and the failure message names the exact file:line to
//! fix or exempt.

mod check_memopath;
mod check_serve;
mod check_trace;

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// A flagged line: file, 1-based line number, the offending text.
#[derive(Debug)]
struct Violation {
    file: PathBuf,
    line: usize,
    text: String,
}

/// The forbidden patterns, assembled at runtime so this file does not flag
/// itself. Returns `(needle, extra)` pairs: a line is a violation if it
/// contains `needle` and (when `extra` is non-empty) also contains `extra`.
fn forbidden_patterns() -> Vec<(String, String)> {
    let std_sync = String::from("std::") + "sync::";
    let std_thread = String::from("std::") + "thread::";
    vec![
        (std_sync.clone() + "atomic", String::new()),
        (std_thread + "park", String::new()),
        (std_sync.clone(), String::from("Mutex")),
        (std_sync.clone(), String::from("RwLock")),
        (std_sync, String::from("Condvar")),
    ]
}

/// Directories under the repo root whose `.rs` files are scanned.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples", "benches"];

/// Path prefixes (relative to the repo root) exempt from the lint:
/// `crates/sync` is where the primitives are allowed to live.
const EXEMPT: &[&str] = &["crates/sync"];

fn is_exempt(rel: &Path) -> bool {
    EXEMPT
        .iter()
        .any(|prefix| rel.starts_with(Path::new(prefix)))
}

fn scan_file(root: &Path, file: &Path, out: &mut Vec<Violation>) {
    let Ok(contents) = std::fs::read_to_string(file) else {
        return;
    };
    let patterns = forbidden_patterns();
    for (index, line) in contents.lines().enumerate() {
        let hit = patterns.iter().any(|(needle, extra)| {
            line.contains(needle) && (extra.is_empty() || line.contains(extra))
        });
        if hit {
            out.push(Violation {
                file: file.strip_prefix(root).unwrap_or(file).to_path_buf(),
                line: index + 1,
                text: line.trim().to_string(),
            });
        }
    }
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<Violation>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let rel = path.strip_prefix(root).unwrap_or(&path);
        if is_exempt(rel) {
            continue;
        }
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == ".git" {
                continue;
            }
            walk(root, &path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            scan_file(root, &path, out);
        }
    }
}

/// Runs the lint over the repo rooted at `root`; returns the violations.
fn lint_sync(root: &Path) -> Vec<Violation> {
    let mut violations = Vec::new();
    for scan_root in SCAN_ROOTS {
        walk(root, &root.join(scan_root), &mut violations);
    }
    violations
}

fn report(violations: &[Violation]) -> String {
    let mut message = String::new();
    for v in violations {
        let _ = writeln!(message, "{}:{}: {}", v.file.display(), v.line, v.text);
    }
    let _ = writeln!(
        message,
        "{} raw std synchronization primitive(s) outside crates/sync; \
         use atm_sync::{{Mutex, RwLock, Condvar, Event}} and atm_sync::atomic::* \
         so `--cfg atm_check` builds stay fully instrumented (see CONCURRENCY.md)",
        violations.len()
    );
    message
}

/// The repo root, two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the repo root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let command = std::env::args().nth(1).unwrap_or_default();
    match command.as_str() {
        "lint-sync" => {
            let violations = lint_sync(&repo_root());
            if violations.is_empty() {
                println!("lint-sync: clean");
                ExitCode::SUCCESS
            } else {
                eprint!("{}", report(&violations));
                ExitCode::FAILURE
            }
        }
        "check-trace" => {
            let Some(path) = std::env::args().nth(2) else {
                eprintln!("usage: cargo run -p xtask -- check-trace FILE");
                return ExitCode::FAILURE;
            };
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(err) => {
                    eprintln!("check-trace: cannot read {path}: {err}");
                    return ExitCode::FAILURE;
                }
            };
            match check_trace::check_trace(&text) {
                Ok(summary) => {
                    println!("check-trace: {path}: {summary}");
                    ExitCode::SUCCESS
                }
                Err(err) => {
                    eprintln!("check-trace: {path}: {err}");
                    ExitCode::FAILURE
                }
            }
        }
        "check-serve" => {
            let Some(path) = std::env::args().nth(2) else {
                eprintln!("usage: cargo run -p xtask -- check-serve FILE");
                return ExitCode::FAILURE;
            };
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(err) => {
                    eprintln!("check-serve: cannot read {path}: {err}");
                    return ExitCode::FAILURE;
                }
            };
            match check_serve::check_serve(&text) {
                Ok(summary) => {
                    println!("check-serve: {path}: {summary}");
                    ExitCode::SUCCESS
                }
                Err(err) => {
                    eprintln!("check-serve: {path}: {err}");
                    ExitCode::FAILURE
                }
            }
        }
        "check-memopath" => {
            let Some(path) = std::env::args().nth(2) else {
                eprintln!("usage: cargo run -p xtask -- check-memopath FILE");
                return ExitCode::FAILURE;
            };
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(err) => {
                    eprintln!("check-memopath: cannot read {path}: {err}");
                    return ExitCode::FAILURE;
                }
            };
            match check_memopath::check_memopath(&text) {
                Ok(summary) => {
                    println!("check-memopath: {path}: {summary}");
                    ExitCode::SUCCESS
                }
                Err(err) => {
                    eprintln!("check-memopath: {path}: {err}");
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            eprintln!(
                "unknown xtask command {other:?}; available: lint-sync check-trace check-serve check-memopath"
            );
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The lint runs as part of the ordinary test suite too, so a raw
    /// `std::sync` primitive cannot land even without the CI step.
    #[test]
    fn no_raw_sync_primitives_outside_crates_sync() {
        let violations = lint_sync(&repo_root());
        assert!(violations.is_empty(), "\n{}", report(&violations));
    }

    #[test]
    fn the_patterns_catch_the_usual_spellings() {
        let dir = std::env::temp_dir().join("xtask-lint-self-test");
        let src = dir.join("src");
        std::fs::create_dir_all(&src).unwrap();
        let atomic = String::from("use std::") + "sync::atomic::AtomicUsize;";
        let mutex = String::from("use std::") + "sync::{Arc, Mutex};";
        let park = String::from("std::") + "thread::park();";
        let fine = String::from("use std::") + "sync::Arc;\nuse atm_sync::Mutex;";
        std::fs::write(src.join("bad.rs"), format!("{atomic}\n{mutex}\n{park}\n")).unwrap();
        std::fs::write(src.join("good.rs"), fine).unwrap();
        let violations = lint_sync(&dir);
        let lines: Vec<usize> = violations
            .iter()
            .filter(|v| v.file.ends_with("bad.rs"))
            .map(|v| v.line)
            .collect();
        assert_eq!(lines, vec![1, 2, 3], "{:?}", violations);
        assert!(violations.iter().all(|v| !v.file.ends_with("good.rs")));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
