//! `check-trace`: validates a Chrome Trace Event Format file produced by
//! `atm-eval --trace`.
//!
//! The check is structural, not visual: the trace must be a non-empty JSON
//! array of event objects, every event must carry the required `ph` /
//! `pid` / `tid` keys (with `ts` on every non-metadata event), and the
//! timestamps of each `(pid, tid)` track must be non-decreasing in file
//! order — the contract `ChromeTraceBuilder` documents and Perfetto's
//! importer relies on. Like `lint-sync`, the validator is deliberately
//! dependency-free: a ~100-line recursive-descent JSON parser is all the
//! format needs.

use std::collections::HashMap;

/// A parsed JSON value (numbers as `f64`, objects as ordered pairs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key when `self` is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if any.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> String {
        format!("json error at byte {}: {message}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {text}")))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self
                .peek()
                .ok_or_else(|| self.error("unterminated string"))?
            {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our traces;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(self.error(&format!("bad escape \\{}", other as char))),
                    }
                }
                _ => {
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.error("bad number"))
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.error("unexpected end"))? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.error("expected ',' or ']'")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(self.error("expected ',' or '}'")),
                    }
                }
            }
            _ => self.number(),
        }
    }
}

/// Parses a complete JSON document.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut parser = Parser::new(text);
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing garbage after the document"));
    }
    Ok(value)
}

/// Validates Chrome-trace JSON text; `Ok` carries a short summary line.
pub fn check_trace(text: &str) -> Result<String, String> {
    let Json::Arr(events) = parse_json(text)? else {
        return Err("trace must be a JSON array of events".into());
    };
    if events.is_empty() {
        return Err("trace contains no events".into());
    }
    let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();
    let mut timed = 0usize;
    let mut counters = 0usize;
    let mut complete = 0usize;
    for (index, event) in events.iter().enumerate() {
        let at = |key: &str| -> Result<&Json, String> {
            event
                .get(key)
                .ok_or_else(|| format!("event {index}: missing required key \"{key}\""))
        };
        let ph = at("ph")?
            .as_str()
            .ok_or_else(|| format!("event {index}: \"ph\" must be a string"))?
            .to_string();
        let pid = at("pid")?
            .as_num()
            .ok_or_else(|| format!("event {index}: \"pid\" must be a number"))?
            as u64;
        let tid = at("tid")?
            .as_num()
            .ok_or_else(|| format!("event {index}: \"tid\" must be a number"))?
            as u64;
        match ph.as_str() {
            // Metadata events carry no timestamp.
            "M" => continue,
            "X" => {
                complete += 1;
                at("dur")?
                    .as_num()
                    .ok_or_else(|| format!("event {index}: \"dur\" must be a number"))?;
            }
            "C" => counters += 1,
            other => return Err(format!("event {index}: unsupported ph {other:?}")),
        }
        let ts = at("ts")?
            .as_num()
            .ok_or_else(|| format!("event {index}: \"ts\" must be a number"))?;
        timed += 1;
        if let Some(&previous) = last_ts.get(&(pid, tid)) {
            if ts < previous {
                return Err(format!(
                    "event {index}: ts {ts} on track (pid {pid}, tid {tid}) \
                     goes backwards (previous {previous})"
                ));
            }
        }
        last_ts.insert((pid, tid), ts);
    }
    if complete == 0 {
        return Err("trace has no complete (ph \"X\") events".into());
    }
    if counters == 0 {
        return Err("trace has no counter (ph \"C\") events".into());
    }
    Ok(format!(
        "{} events ({complete} spans, {counters} counter samples, {timed} timed) \
         across {} tracks, timestamps monotonic per track",
        events.len(),
        last_ts.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_the_shapes_traces_use() {
        let doc = r#"[{"ph":"X","name":"a b","pid":1,"tid":2,"ts":1.5,"dur":0.25,
                       "args":{"decision":"tht_hit","tau":0.2,"ok":true,"x":null}}]"#;
        let parsed = parse_json(doc).unwrap();
        let Json::Arr(events) = &parsed else {
            panic!("not an array")
        };
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(events[0].get("ts").unwrap().as_num(), Some(1.5));
        let args = events[0].get("args").unwrap();
        assert_eq!(args.get("decision").unwrap().as_str(), Some("tht_hit"));
        assert_eq!(args.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(args.get("x"), Some(&Json::Null));
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert_eq!(parse_json(r#""aA\n""#).unwrap().as_str(), Some("aA\n"));
    }

    fn valid_trace() -> String {
        String::from(
            r#"[
            {"ph":"M","name":"process_name","pid":1,"tid":0,"args":{"name":"atm-eval"}},
            {"ph":"X","name":"Task Execution","pid":1,"tid":0,"ts":1.000,"dur":4.000},
            {"ph":"X","name":"square","pid":1,"tid":1000,"ts":1.200,"dur":3.600,
             "args":{"decision":"tht_hit","latency_ns":3600}},
            {"ph":"C","name":"ready_depth","pid":1,"tid":9998,"ts":1.500,"args":{"value":3}},
            {"ph":"C","name":"ready_depth","pid":1,"tid":9998,"ts":2.500,"args":{"value":2}}
            ]"#,
        )
    }

    #[test]
    fn accepts_a_well_formed_trace() {
        let summary = check_trace(&valid_trace()).unwrap();
        assert!(summary.contains("5 events"), "{summary}");
        assert!(summary.contains("2 counter samples"), "{summary}");
    }

    #[test]
    fn rejects_empty_missing_key_and_backwards_timestamps() {
        assert!(check_trace("[]").is_err());
        assert!(check_trace("{}").is_err());
        // Missing tid.
        let missing = r#"[{"ph":"X","name":"a","pid":1,"ts":1,"dur":1}]"#;
        assert!(check_trace(missing).unwrap_err().contains("tid"));
        // Backwards ts on one track.
        let backwards = valid_trace().replace("\"ts\":2.500", "\"ts\":0.500");
        assert!(check_trace(&backwards)
            .unwrap_err()
            .contains("goes backwards"));
        // ts fine when tracks interleave.
        assert!(check_trace(&valid_trace()).is_ok());
    }

    #[test]
    fn requires_spans_and_counters() {
        let only_meta = r#"[{"ph":"M","name":"process_name","pid":1,"tid":0,"args":{"name":"x"}}]"#;
        assert!(check_trace(only_meta).unwrap_err().contains("no complete"));
        let no_counters = r#"[{"ph":"X","name":"a","pid":1,"tid":0,"ts":1,"dur":1}]"#;
        assert!(check_trace(no_counters).unwrap_err().contains("no counter"));
    }
}
