//! `check-serve`: validates the `BENCH_serve.json` machine report produced
//! by `atm-eval serve --json DIR`.
//!
//! The serving experiment's contract (see `crates/bench`): an open-loop
//! sweep over at least three offered-load points, nonzero request-latency
//! percentiles, a positive saturation throughput, and — because the top of
//! the ladder is deliberately offered past worker capacity — a nonzero
//! count of arrivals shed with `Overloaded`. A report that misses any of
//! these means the service benchmark silently stopped exercising admission
//! control, so CI fails on it.

use crate::check_trace::{parse_json, Json};

/// Validates the serving report text; returns a one-line summary on
/// success and a description of the first violated contract on failure.
pub fn check_serve(text: &str) -> Result<String, String> {
    let root = parse_json(text)?;
    if root.get("id").and_then(Json::as_str) != Some("serve") {
        return Err("`id` must be \"serve\"".to_string());
    }
    let metrics = root
        .get("metrics")
        .ok_or_else(|| "no `metrics` object".to_string())?;
    let num = |name: &str| -> Result<f64, String> {
        metrics
            .get(name)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("metric `{name}` missing or not a number"))
    };

    let mut points = 0usize;
    while metrics.get(&format!("load{points}_offered_rps")).is_some() {
        points += 1;
    }
    if points < 3 {
        return Err(format!(
            "the sweep must cover at least 3 offered-load points, found {points}"
        ));
    }
    let p50 = num("request_p50_ns")?;
    let p99 = num("request_p99_ns")?;
    if p50 <= 0.0 || p99 < p50 {
        return Err(format!(
            "request percentiles must satisfy 0 < p50 <= p99, got p50 {p50} / p99 {p99}"
        ));
    }
    let saturation = num("saturation_rps")?;
    if saturation <= 0.0 {
        return Err(format!("saturation_rps must be positive, got {saturation}"));
    }
    let shed = num("overload_rejected")?;
    if shed <= 0.0 {
        return Err(
            "the top offered-load point shed nothing: the sweep never pushed the \
             service past saturation, so admission control went unexercised"
                .to_string(),
        );
    }
    Ok(format!(
        "{points} offered-load points, request p99 {p99:.0} ns, saturation \
         {saturation:.0} req/s, {shed:.0} arrivals shed at overload"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(p99: f64, shed: f64) -> String {
        format!(
            r#"{{
  "id": "serve",
  "title": "Serving",
  "metrics": {{
    "load0_offered_rps": 1000,
    "load1_offered_rps": 5000,
    "load2_offered_rps": 40000,
    "request_p50_ns": 111616,
    "request_p99_ns": {p99},
    "saturation_rps": 7435.1,
    "overload_rejected": {shed}
  }},
  "csv_header": "offered_rps",
  "rows": ["1000", "5000", "40000"]
}}"#
        )
    }

    #[test]
    fn a_conforming_report_passes_with_a_summary() {
        let summary = check_serve(&sample(17039360.0, 6458.0)).unwrap();
        assert!(summary.contains("3 offered-load points"), "{summary}");
        assert!(summary.contains("6458 arrivals shed"), "{summary}");
    }

    #[test]
    fn zero_shed_or_inverted_percentiles_fail() {
        let err = check_serve(&sample(17039360.0, 0.0)).unwrap_err();
        assert!(err.contains("shed nothing"), "{err}");
        let err = check_serve(&sample(1.0, 6458.0)).unwrap_err();
        assert!(err.contains("p50 <= p99"), "{err}");
    }

    #[test]
    fn missing_metrics_and_wrong_id_fail() {
        assert!(check_serve("{\"id\": \"serve\"}")
            .unwrap_err()
            .contains("metrics"));
        let wrong = sample(1.0, 1.0).replace("\"serve\"", "\"creation\"");
        assert!(check_serve(&wrong).unwrap_err().contains("id"));
        let missing = sample(17039360.0, 6458.0).replace("load2_offered_rps", "x");
        assert!(check_serve(&missing)
            .unwrap_err()
            .contains("at least 3 offered-load points"));
    }
}
