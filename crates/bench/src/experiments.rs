//! One function per table/figure of the paper's evaluation section, plus the
//! experiments that go beyond it: memo-store cache pressure, warm start, and
//! the mixed per-type-policy run.

use crate::measure::{geomean, EvalContext};
use crate::report::Report;
use atm_apps::{AppId, RunOptions, Scale};
use atm_core::{
    AtmConfig, AtmEngine, EntryKey, MemoSpec, MemoStore, OutputSnapshot, PolicyKind, StoreConfig,
    StoreCountersSnapshot, ThtConfig,
};
use atm_obs::{LatencyMetric, MemoDecision, MetricsSnapshot, Observability};
use atm_runtime::{
    Affinity, QueueMode, Region, RegionData, RegionId, RuntimeBuilder, TaskId, TaskTypeBuilder,
    TaskTypeId, ThreadState,
};
use atm_serve::{ServeConfig, ServeEngine, ServeError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The experiments the harness can regenerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// Table I: benchmark description.
    Table1,
    /// Table II: dynamic ATM parameters.
    Table2,
    /// Table III: ATM memory overhead.
    Table3,
    /// §IV-B: THT sizing sensitivity (N buckets, M ways).
    Sizing,
    /// Figure 3: speedup of Static/Dynamic ATM (THT, THT+IKT) and the Oracles.
    Figure3,
    /// Figure 4: correctness of Static/Dynamic ATM and Oracle (95 %).
    Figure4,
    /// Figure 5: correctness vs constant selection percentage.
    Figure5,
    /// Figure 6: scalability from 1 to 8 cores.
    Figure6,
    /// Figure 7: Gauss-Seidel execution-trace state breakdown at 2 and 8 cores.
    Figure7,
    /// Figure 8: Blackscholes ready-task evolution with and without ATM.
    Figure8,
    /// Figure 9: cumulative reuse generation over the task stream.
    Figure9,
    /// Memo-store cache pressure: byte-budget sweep × eviction policy.
    Pressure,
    /// Cold-start vs warm-start from a persisted memo store.
    WarmStart,
    /// Per-type `MemoSpec` policies (exact, adaptive, fixed-p) running
    /// concurrently in one runtime, with independent per-type trajectories.
    Mixed,
    /// Scheduler throughput: a fine-grained task flood (memoized and not)
    /// swept over worker counts × ready-queue modes × dependence-chain
    /// shapes (count × length), in tasks/sec.
    Scaling,
    /// Task-creation throughput: the master thread's submission rate swept
    /// over batch sizes, plus the peak live-node gauge showing that node
    /// retirement keeps graph memory bounded by the wave, not the run.
    Creation,
    /// The runtime as a long-running service: an open-loop offered-load
    /// sweep over multi-tenant sessions, reporting request p50/p99 latency
    /// and the admission-controlled saturation throughput.
    Serve,
    /// Memo-path read microbenchmark: a multi-reader hit-storm on the memo
    /// store, A/B-ing the lock-free seqlock read path against the
    /// mutex-guarded baseline (`StoreConfig::locked_reads`).
    Memopath,
}

impl Experiment {
    /// All experiments, in the order `atm-eval all` runs them.
    pub const ALL: [Experiment; 18] = [
        Experiment::Table1,
        Experiment::Table2,
        Experiment::Table3,
        Experiment::Sizing,
        Experiment::Figure3,
        Experiment::Figure4,
        Experiment::Figure5,
        Experiment::Figure6,
        Experiment::Figure7,
        Experiment::Figure8,
        Experiment::Figure9,
        Experiment::Pressure,
        Experiment::WarmStart,
        Experiment::Mixed,
        Experiment::Scaling,
        Experiment::Creation,
        Experiment::Serve,
        Experiment::Memopath,
    ];

    /// Command-line name.
    pub fn id(self) -> &'static str {
        match self {
            Experiment::Table1 => "table1",
            Experiment::Table2 => "table2",
            Experiment::Table3 => "table3",
            Experiment::Sizing => "sizing",
            Experiment::Figure3 => "figure3",
            Experiment::Figure4 => "figure4",
            Experiment::Figure5 => "figure5",
            Experiment::Figure6 => "figure6",
            Experiment::Figure7 => "figure7",
            Experiment::Figure8 => "figure8",
            Experiment::Figure9 => "figure9",
            Experiment::Pressure => "pressure",
            Experiment::WarmStart => "warmstart",
            Experiment::Mixed => "mixed",
            Experiment::Scaling => "scaling",
            Experiment::Creation => "creation",
            Experiment::Serve => "serve",
            Experiment::Memopath => "memopath",
        }
    }

    /// Parses a command-line name.
    pub fn parse(name: &str) -> Option<Experiment> {
        let lower = name.to_ascii_lowercase();
        Experiment::ALL.into_iter().find(|e| e.id() == lower)
    }
}

/// All experiment ids (for `atm-eval --list`).
pub fn all_experiments() -> Vec<&'static str> {
    Experiment::ALL.iter().map(|e| e.id()).collect()
}

/// Runs one experiment under the given context. Every report gains the
/// task-latency percentiles of the tasks the experiment ran (p50/p99 of the
/// submit→finish distribution, plus the kernel and submit-path medians).
pub fn run_experiment(experiment: Experiment, ctx: &EvalContext) -> Report {
    // Drain whatever a previous experiment left behind so the percentiles
    // below cover exactly this experiment's runs.
    let _ = ctx.take_latency();
    let mut report = dispatch_experiment(experiment, ctx);
    let latency = ctx.take_latency();
    let tasks = latency.get(LatencyMetric::TaskLatency);
    report.metric("task_latency_p50_ns", tasks.p50() as f64);
    report.metric("task_latency_p99_ns", tasks.p99() as f64);
    report.metric("task_latency_count", tasks.count as f64);
    report.metric(
        "kernel_p50_ns",
        latency.get(LatencyMetric::Kernel).p50() as f64,
    );
    report.metric(
        "submit_p50_ns",
        latency.get(LatencyMetric::Submit).p50() as f64,
    );
    let release = latency.get(LatencyMetric::Release);
    report.metric("release_p50_ns", release.p50() as f64);
    report.metric("release_p99_ns", release.p99() as f64);
    let memo_lookup = latency.get(LatencyMetric::MemoLookup);
    report.metric("memo_lookup_p50_ns", memo_lookup.p50() as f64);
    report.metric("memo_lookup_p99_ns", memo_lookup.p99() as f64);
    report
}

fn dispatch_experiment(experiment: Experiment, ctx: &EvalContext) -> Report {
    match experiment {
        Experiment::Table1 => table1(ctx),
        Experiment::Table2 => table2(ctx),
        Experiment::Table3 => table3(ctx),
        Experiment::Sizing => sizing(ctx),
        Experiment::Figure3 => figure3(ctx),
        Experiment::Figure4 => figure4(ctx),
        Experiment::Figure5 => figure5(ctx),
        Experiment::Figure6 => figure6(ctx),
        Experiment::Figure7 => figure7(ctx),
        Experiment::Figure8 => figure8(ctx),
        Experiment::Figure9 => figure9(ctx),
        Experiment::Pressure => pressure(ctx),
        Experiment::WarmStart => warmstart(ctx),
        Experiment::Mixed => mixed(ctx),
        Experiment::Scaling => scaling(ctx),
        Experiment::Creation => creation(ctx),
        Experiment::Serve => serve(ctx),
        Experiment::Memopath => memopath(ctx),
    }
}

/// Table I: benchmark description (program inputs, task input sizes and
/// types, memoized task type, task counts, correctness target).
pub fn table1(ctx: &EvalContext) -> Report {
    let mut report = Report::new(
        "table1",
        "Table I — Benchmarks description",
        "benchmark,program_inputs,task_input_bytes,task_input_types,memoized_task_type,num_tasks,correctness_on",
    );
    report.linef(format_args!(
        "{:<13} {:>16} {:<12} {:<22} {:>9}  {}",
        "Benchmark", "TaskInput(B)", "Types", "Memoized task type", "#tasks", "Correctness on"
    ));
    for id in AppId::ALL {
        let app = ctx.app(id);
        let info = app.table_info();
        report.linef(format_args!(
            "{:<13} {:>16} {:<12} {:<22} {:>9}  {}",
            id.name(),
            info.task_input_bytes,
            info.task_input_types,
            info.memoized_task_type,
            info.num_tasks,
            info.correctness_on
        ));
        report.row(format!(
            "{},{:?},{},{},{},{},{}",
            id.short_name(),
            info.program_inputs,
            info.task_input_bytes,
            info.task_input_types,
            info.memoized_task_type,
            info.num_tasks,
            info.correctness_on
        ));
    }
    report
}

/// Table II: the dynamic ATM parameters (`L_training`, `τ_max`) per benchmark.
pub fn table2(ctx: &EvalContext) -> Report {
    let mut report = Report::new(
        "table2",
        "Table II — Dynamic ATM parameters",
        "benchmark,l_training,tau_max_percent",
    );
    report.linef(format_args!(
        "{:<13} {:>10} {:>9}",
        "Benchmark", "Ltraining", "tau_max"
    ));
    for id in AppId::ALL {
        let spec = ctx.app(id).memo_spec();
        report.linef(format_args!(
            "{:<13} {:>10} {:>8.0}%",
            id.name(),
            spec.training_window_len(),
            spec.tau_max() * 100.0
        ));
        report.row(format!(
            "{},{},{}",
            id.short_name(),
            spec.training_window_len(),
            spec.tau_max() * 100.0
        ));
    }
    report
}

/// Table III: ATM memory overhead with respect to the application footprint.
pub fn table3(ctx: &EvalContext) -> Report {
    let mut report = Report::new(
        "table3",
        "Table III — ATM memory overhead (% of application footprint)",
        "benchmark,atm_bytes,app_bytes,overhead_percent",
    );
    report.linef(format_args!(
        "{:<13} {:>12} {:>14} {:>10}",
        "Benchmark", "ATM (bytes)", "App (bytes)", "Overhead"
    ));
    let mut overheads = Vec::new();
    for id in AppId::ALL {
        let m = ctx.measure(
            id,
            &RunOptions::with_atm(ctx.workers, AtmConfig::dynamic_atm()),
        );
        let overhead = m.memory_overhead_percent;
        overheads.push(overhead);
        report.linef(format_args!(
            "{:<13} {:>12} {:>14} {:>9.2}%",
            id.name(),
            m.run.atm_memory_bytes,
            m.run.app_memory_bytes,
            overhead
        ));
        report.row(format!(
            "{},{},{},{:.3}",
            id.short_name(),
            m.run.atm_memory_bytes,
            m.run.app_memory_bytes,
            overhead
        ));
    }
    let avg = overheads.iter().sum::<f64>() / overheads.len().max(1) as f64;
    report.linef(format_args!("{:<13} {:>38} {:>9.2}%", "average", "", avg));
    report
}

/// §IV-B: sensitivity of the THT sizing — the number of index bits `N`
/// (lock/bucket contention) and the associativity `M` (capacity).
pub fn sizing(ctx: &EvalContext) -> Report {
    let mut report = Report::new(
        "sizing",
        "Section IV-B — THT sizing (N index bits, M ways)",
        "benchmark,parameter,value,speedup,reuse_percent",
    );
    // N sweep on Blackscholes (the most memoization-intensive benchmark)
    // with M fixed at the paper's value, then an M sweep on Kmeans (the
    // benchmark the paper singles out as needing M = 128).
    let n_values = [0u32, 2, 4, 8];
    let m_values = [1usize, 16, 128];

    report.line("N sweep (Blackscholes, Dynamic ATM, M = 128):");
    for &n in &n_values {
        let config = AtmConfig::dynamic_atm().with_tht(ThtConfig {
            bucket_bits: n,
            ways: 128,
        });
        let m = ctx.measure(
            AppId::Blackscholes,
            &RunOptions::with_atm(ctx.workers, config),
        );
        let speedup = ctx.speedup(AppId::Blackscholes, ctx.workers, &m);
        report.linef(format_args!(
            "  N = {n:>2}  speedup {speedup:>6.2}x  reuse {:>5.1}%",
            m.reuse_percent
        ));
        report.row(format!(
            "blackscholes,N,{n},{speedup:.4},{:.2}",
            m.reuse_percent
        ));
    }
    report.line("M sweep (Kmeans, Dynamic ATM, N = 8):");
    for &ways in &m_values {
        let config = AtmConfig::dynamic_atm().with_tht(ThtConfig {
            bucket_bits: 8,
            ways,
        });
        let m = ctx.measure(AppId::Kmeans, &RunOptions::with_atm(ctx.workers, config));
        let speedup = ctx.speedup(AppId::Kmeans, ctx.workers, &m);
        report.linef(format_args!(
            "  M = {ways:>3}  speedup {speedup:>6.2}x  reuse {:>5.1}%",
            m.reuse_percent
        ));
        report.row(format!(
            "kmeans,M,{ways},{speedup:.4},{:.2}",
            m.reuse_percent
        ));
    }
    report
}

/// Figure 3: speedup of Static and Dynamic ATM, with THT only and THT+IKT,
/// plus the Oracle (100 %) and Oracle (95 %) configurations.
pub fn figure3(ctx: &EvalContext) -> Report {
    let mut report = Report::new(
        "figure3",
        "Figure 3 — Speedup over the no-ATM baseline (same worker count)",
        "benchmark,configuration,speedup",
    );
    let configs: [(&str, AtmConfig); 4] = [
        ("Static ATM (THT)", AtmConfig::static_atm().without_ikt()),
        ("Dynamic ATM (THT)", AtmConfig::dynamic_atm().without_ikt()),
        ("Static ATM (THT+IKT)", AtmConfig::static_atm()),
        ("Dynamic ATM (THT+IKT)", AtmConfig::dynamic_atm()),
    ];
    report.linef(format_args!(
        "{:<13} {:>14} {:>15} {:>18} {:>19} {:>13} {:>12}",
        "Benchmark",
        "Static(THT)",
        "Dynamic(THT)",
        "Static(THT+IKT)",
        "Dynamic(THT+IKT)",
        "Oracle(100%)",
        "Oracle(95%)"
    ));

    let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); 6];
    for id in AppId::ALL {
        let mut row = Vec::new();
        for (_, config) in &configs {
            let m = ctx.measure(id, &RunOptions::with_atm(ctx.workers, *config));
            row.push(ctx.speedup(id, ctx.workers, &m));
        }
        for min_correctness in [99.999_999, 95.0] {
            let speedup = match ctx.measure_oracle(id, ctx.workers, min_correctness) {
                Some(m) => ctx.speedup(id, ctx.workers, &m),
                None => f64::NAN,
            };
            row.push(speedup);
        }
        report.linef(format_args!(
            "{:<13} {:>13.2}x {:>14.2}x {:>17.2}x {:>18.2}x {:>12.2}x {:>11.2}x",
            id.name(),
            row[0],
            row[1],
            row[2],
            row[3],
            row[4],
            row[5]
        ));
        let labels = [
            "static_tht",
            "dynamic_tht",
            "static_tht_ikt",
            "dynamic_tht_ikt",
            "oracle_100",
            "oracle_95",
        ];
        for (label, value) in labels.iter().zip(&row) {
            report.row(format!("{},{},{:.4}", id.short_name(), label, value));
        }
        for (slot, value) in per_config.iter_mut().zip(&row) {
            slot.push(*value);
        }
    }
    let geo: Vec<f64> = per_config.iter().map(|v| geomean(v)).collect();
    report.linef(format_args!(
        "{:<13} {:>13.2}x {:>14.2}x {:>17.2}x {:>18.2}x {:>12.2}x {:>11.2}x",
        "geomean", geo[0], geo[1], geo[2], geo[3], geo[4], geo[5]
    ));
    let labels = [
        "static_tht",
        "dynamic_tht",
        "static_tht_ikt",
        "dynamic_tht_ikt",
        "oracle_100",
        "oracle_95",
    ];
    for (label, value) in labels.iter().zip(&geo) {
        report.row(format!("geomean,{label},{value:.4}"));
    }
    report
}

/// Figure 4: correctness of Static ATM, Dynamic ATM and Oracle (95 %).
pub fn figure4(ctx: &EvalContext) -> Report {
    let mut report = Report::new(
        "figure4",
        "Figure 4 — Correctness (%) of Static ATM, Dynamic ATM and Oracle (95%)",
        "benchmark,configuration,correctness_percent",
    );
    report.linef(format_args!(
        "{:<13} {:>12} {:>13} {:>13}",
        "Benchmark", "Static ATM", "Dynamic ATM", "Oracle(95%)"
    ));
    let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for id in AppId::ALL {
        let static_c = ctx
            .measure(
                id,
                &RunOptions::with_atm(ctx.workers, AtmConfig::static_atm()),
            )
            .correctness;
        let dynamic_c = ctx
            .measure(
                id,
                &RunOptions::with_atm(ctx.workers, AtmConfig::dynamic_atm()),
            )
            .correctness;
        let oracle_c = ctx
            .measure_oracle(id, ctx.workers, 95.0)
            .map(|m| m.correctness)
            .unwrap_or(f64::NAN);
        report.linef(format_args!(
            "{:<13} {:>11.2}% {:>12.2}% {:>12.2}%",
            id.name(),
            static_c,
            dynamic_c,
            oracle_c
        ));
        for (label, value) in [
            ("static", static_c),
            ("dynamic", dynamic_c),
            ("oracle_95", oracle_c),
        ] {
            report.row(format!("{},{},{:.4}", id.short_name(), label, value));
        }
        per_config[0].push(static_c);
        per_config[1].push(dynamic_c);
        per_config[2].push(oracle_c);
    }
    report.linef(format_args!(
        "{:<13} {:>11.2}% {:>12.2}% {:>12.2}%",
        "geomean",
        geomean(&per_config[0]),
        geomean(&per_config[1]),
        geomean(&per_config[2])
    ));
    report
}

/// Figure 5: program correctness as a function of a constant selection
/// percentage `p`, plus the `p` chosen by Dynamic ATM (the starred points).
pub fn figure5(ctx: &EvalContext) -> Report {
    let mut report = Report::new(
        "figure5",
        "Figure 5 — Correctness vs constant selection percentage p",
        "benchmark,p,correctness_percent,reuse_percent,dynamic_choice",
    );
    for id in AppId::ALL {
        let sweep = ctx.p_sweep(id);
        let dynamic_run = ctx.measure(
            id,
            &RunOptions::with_atm(ctx.workers, AtmConfig::dynamic_atm()),
        );
        let chosen = dynamic_run.final_p.unwrap_or(1.0);
        report.linef(format_args!(
            "{} (dynamic ATM chose p = {:.5}%, correctness {:.2}%):",
            id.name(),
            chosen * 100.0,
            dynamic_run.correctness
        ));
        for entry in sweep.iter() {
            let star = if (entry.p - chosen).abs() / chosen.max(1e-12) < 0.5 {
                "  <-- dynamic"
            } else {
                ""
            };
            report.linef(format_args!(
                "  p = {:>9.5}%  correctness {:>7.2}%  reuse {:>5.1}%{}",
                entry.p * 100.0,
                entry.correctness,
                entry.reuse_percent,
                star
            ));
            report.row(format!(
                "{},{:.8},{:.4},{:.2},{}",
                id.short_name(),
                entry.p,
                entry.correctness,
                entry.reuse_percent,
                if star.is_empty() { 0 } else { 1 }
            ));
        }
    }
    report
}

/// Figure 6: speedup of Dynamic ATM and Oracle (95 %) as the number of
/// worker threads grows from 1 to 8.
pub fn figure6(ctx: &EvalContext) -> Report {
    let mut report = Report::new(
        "figure6",
        "Figure 6 — Speedup vs number of cores (Dynamic ATM and Oracle 95%)",
        "benchmark,workers,configuration,speedup",
    );
    let worker_counts = [1usize, 2, 4, 8];
    for id in AppId::ALL {
        report.linef(format_args!("{}:", id.name()));
        for &workers in &worker_counts {
            let dynamic = ctx.measure(id, &RunOptions::with_atm(workers, AtmConfig::dynamic_atm()));
            let dynamic_speedup = ctx.speedup(id, workers, &dynamic);
            let oracle_speedup = ctx
                .measure_oracle(id, workers, 95.0)
                .map(|m| ctx.speedup(id, workers, &m))
                .unwrap_or(f64::NAN);
            report.linef(format_args!(
                "  {workers} cores: dynamic {dynamic_speedup:>6.2}x   oracle(95%) {oracle_speedup:>6.2}x"
            ));
            report.row(format!(
                "{},{},dynamic,{:.4}",
                id.short_name(),
                workers,
                dynamic_speedup
            ));
            report.row(format!(
                "{},{},oracle_95,{:.4}",
                id.short_name(),
                workers,
                oracle_speedup
            ));
        }
    }
    report
}

/// Figure 7: Gauss-Seidel execution-trace state breakdown with 2 and 8
/// workers under the Oracle (95 %) configuration.
pub fn figure7(ctx: &EvalContext) -> Report {
    let mut report = Report::new(
        "figure7",
        "Figure 7 — Gauss-Seidel trace state breakdown (Oracle 95%, 2 vs 8 cores)",
        "workers,state,total_ms,fraction_of_busy_time",
    );
    let oracle_p = ctx
        .oracle(AppId::GaussSeidel)
        .oracle_95
        .map(|e| e.p)
        .unwrap_or(1.0);
    for workers in [2usize, 8] {
        let options = RunOptions::with_atm(workers, AtmConfig::fixed_p(oracle_p)).traced();
        let m = ctx.measure(AppId::GaussSeidel, &options);
        report.linef(format_args!(
            "{} cores (p = {:.4}%):",
            workers,
            oracle_p * 100.0
        ));
        if let Some(trace) = &m.run.trace {
            for state in ThreadState::ALL {
                let ms = trace.state_ns(state) as f64 / 1e6;
                let fraction = trace.state_fraction(state);
                report.linef(format_args!(
                    "  {:<28} {:>9.3} ms  ({:>5.1}%)",
                    state.label(),
                    ms,
                    fraction * 100.0
                ));
                report.row(format!(
                    "{},{},{:.4},{:.4}",
                    workers,
                    state.label(),
                    ms,
                    fraction
                ));
            }
        } else {
            report.line("  (tracing unavailable)");
        }
    }
    report.line("The ATM states (hash-key computation and memoization copies) grow in");
    report.line("relative cost as the worker count rises — the shared-memory contention");
    report.line("effect the paper describes for Gauss-Seidel.");
    report
}

/// Figure 8: Blackscholes ready-queue evolution with and without ATM,
/// showing the task-creation-throughput bottleneck once tasks become cheap.
pub fn figure8(ctx: &EvalContext) -> Report {
    let mut report = Report::new(
        "figure8",
        "Figure 8 — Blackscholes ready tasks over time, with and without ATM",
        "configuration,sample_index,time_ms,ready_depth",
    );
    for (label, config) in [
        ("no ATM", None),
        ("dynamic ATM", Some(AtmConfig::dynamic_atm())),
    ] {
        let options = match config {
            Some(atm) => RunOptions::with_atm(ctx.workers, atm).traced(),
            None => RunOptions::baseline(ctx.workers).traced(),
        };
        let m = ctx.measure(AppId::Blackscholes, &options);
        let samples = &m.run.ready_samples;
        let max_depth = samples.iter().map(|s| s.depth).max().unwrap_or(0);
        let empty_fraction =
            samples.iter().filter(|s| s.depth == 0).count() as f64 / samples.len().max(1) as f64;
        report.linef(format_args!(
            "{label}: wall {:.2} ms, {} ready-queue samples, max depth {}, {:.1}% of samples empty",
            m.wall_seconds * 1000.0,
            samples.len(),
            max_depth,
            empty_fraction * 100.0
        ));
        // Down-sample the series to ~32 points for the textual output.
        let step = (samples.len() / 32).max(1);
        for (i, sample) in samples.iter().enumerate().step_by(step) {
            report.row(format!(
                "{},{},{:.4},{}",
                label.replace(' ', "_"),
                i,
                sample.at_ns as f64 / 1e6,
                sample.depth
            ));
        }
        report.linef(format_args!(
            "  depth profile (each char = {} samples): {}",
            step,
            samples
                .iter()
                .step_by(step)
                .map(|s| depth_glyph(s.depth, max_depth))
                .collect::<String>()
        ));
    }
    report.line("With ATM the workers drain memoized tasks faster than the master thread");
    report.line("can create them, so the ready queue stays near empty — the creation-");
    report.line("throughput bottleneck the paper identifies.");
    report
}

fn depth_glyph(depth: usize, max_depth: usize) -> char {
    if max_depth == 0 {
        return '_';
    }
    let levels = [' ', '.', ':', '-', '=', '+', '*', '#'];
    let idx = (depth * (levels.len() - 1)).div_ceil(max_depth.max(1));
    levels[idx.min(levels.len() - 1)]
}

/// Figure 9: cumulative reuse generated over the (normalised) task stream,
/// per benchmark, including the single-iteration Blackscholes variant.
pub fn figure9(ctx: &EvalContext) -> Report {
    let mut report = Report::new(
        "figure9",
        "Figure 9 — Cumulative reuse generation over the task stream (Dynamic ATM)",
        "benchmark,normalized_producer_rank,cumulative_reuse_fraction",
    );
    for id in AppId::ALL {
        let m = ctx.measure(
            id,
            &RunOptions::with_atm(ctx.workers, AtmConfig::dynamic_atm()),
        );
        let total_tasks = m.run.runtime_stats.submitted.max(1);
        // Task ids pack shard/slot/generation rather than counting tasks
        // 0..N, so raw ids no longer measure position in the task stream.
        // Rank the distinct producers by id (generation sits in the high
        // bits, making the sort a coarse creation-order proxy) and plot
        // cumulative reuse over that normalised rank instead.
        let mut producer_ids: Vec<u64> = m
            .run
            .reuse_events
            .iter()
            .map(|e| e.producer.raw())
            .collect();
        producer_ids.sort_unstable();
        let total_reuse = producer_ids.len();
        let mut distinct = producer_ids.clone();
        distinct.dedup();
        report.linef(format_args!(
            "{:<13} {} reuse events over {} tasks (reuse {:.1}%)",
            id.name(),
            total_reuse,
            total_tasks,
            m.reuse_percent
        ));
        if total_reuse == 0 {
            report.row(format!("{},1.0,0.0", id.short_name()));
            continue;
        }
        // Cumulative reuse as a function of the normalised producer rank,
        // reported at deciles.
        let mut line = String::from("  cumulative reuse at producer-rank deciles: ");
        for decile in 1..=10 {
            let cutoff_rank = (distinct.len() * decile).div_ceil(10).min(distinct.len());
            let cutoff_id = distinct[cutoff_rank.max(1) - 1];
            let generated = producer_ids.partition_point(|&p| p <= cutoff_id);
            let fraction = generated as f64 / total_reuse as f64;
            line.push_str(&format!("{:.2} ", fraction));
            report.row(format!(
                "{},{:.1},{:.4}",
                id.short_name(),
                decile as f64 / 10.0,
                fraction
            ));
        }
        report.line(line);
    }
    report.line("Benchmarks whose redundancy lives in the program input (Blackscholes,");
    report.line("Kmeans) generate most of their reuse early in the task stream, while the");
    report.line("stencils and LU keep generating reuse across the whole execution.");
    report
}

/// Result of one cache-pressure round (one policy at one budget).
struct PressureRound {
    counters: StoreCountersSnapshot,
    /// Hits observed in the replay phase (phase 2).
    replay_hits: u64,
}

/// One cache-pressure round: a synthetic workload with three task types of
/// very different cost/size profiles, run twice (populate, then replay)
/// under one eviction policy and one byte budget.
///
/// * `heavy` — expensive kernel, tiny output: high benefit density;
/// * `light` — trivial kernel, 32 KiB output: low benefit density;
/// * `giant` — trivial kernel, 128 KiB output: admission-control bait at
///   tight budgets.
///
/// Under a budget that cannot hold the light entries, a cost-aware policy
/// keeps the heavy entries (saving kernel time on replay) while FIFO keeps
/// whatever arrived last.
fn pressure_round(policy: PolicyKind, budget: Option<usize>) -> PressureRound {
    const HEAVY: usize = 12;
    const LIGHT: usize = 12;
    const GIANT: usize = 2;

    let mut config = AtmConfig::static_atm()
        .with_policy(policy)
        .with_tht(ThtConfig {
            bucket_bits: 4,
            ways: 1024,
        });
    if let Some(bytes) = budget {
        config = config.with_byte_budget(bytes);
    }
    let engine = AtmEngine::shared(config);
    let rt = RuntimeBuilder::new()
        .workers(2)
        .interceptor(engine.clone())
        .build();

    let heavy_tt = rt.register_task_type(
        TaskTypeBuilder::new("pressure_heavy", |ctx| {
            let x = ctx.arg::<f64>(0);
            let mut out = [0.0f64; 16];
            for (i, slot) in out.iter_mut().enumerate() {
                let mut v = x[i % x.len()];
                for _ in 0..4000 {
                    v = (v.sin() + 1.25).sqrt();
                }
                *slot = v;
            }
            ctx.out(1, &out);
        })
        .arg::<f64>()
        .out::<f64>()
        .memoizable()
        .build(),
    );
    let light_tt = rt.register_task_type(
        TaskTypeBuilder::new("pressure_light", |ctx| {
            let x = ctx.arg::<f64>(0);
            let out: Vec<f64> = (0..4096).map(|i| x[i % x.len()] + i as f64).collect();
            ctx.out(1, &out);
        })
        .arg::<f64>()
        .out::<f64>()
        .memoizable()
        .build(),
    );
    let giant_tt = rt.register_task_type(
        TaskTypeBuilder::new("pressure_giant", |ctx| {
            let x = ctx.arg::<f64>(0);
            let out: Vec<f64> = (0..16384).map(|i| x[i % x.len()] * 0.5).collect();
            ctx.out(1, &out);
        })
        .arg::<f64>()
        .out::<f64>()
        .memoizable()
        .build(),
    );

    let inputs = |tag: &str, count: usize, len: usize| -> Vec<Region<f64>> {
        (0..count)
            .map(|i| {
                rt.store()
                    .register_typed(
                        format!("{tag}_in{i}"),
                        (0..len)
                            .map(|j| (i * len + j) as f64 * 0.125 + 0.5)
                            .collect::<Vec<f64>>(),
                    )
                    .unwrap()
            })
            .collect()
    };
    let heavy_in = inputs("heavy", HEAVY, 16);
    let light_in = inputs("light", LIGHT, 16);
    let giant_in = inputs("giant", GIANT, 16);

    let mut out_serial = 0usize;
    let mut submit_wave = |tts: &[(atm_runtime::TaskTypeId, &[Region<f64>], usize)]| {
        for &(tt, ins, out_len) in tts {
            for input in ins {
                let out = rt
                    .store()
                    .register_zeros::<f64>(format!("out{out_serial}"), out_len)
                    .unwrap();
                out_serial += 1;
                rt.task(tt).reads(input).writes(&out).submit().unwrap();
            }
            // A barrier per type keeps the populate order deterministic:
            // heavy entries are the oldest, giants the newest.
            rt.taskwait();
        }
    };

    // Phase 1: populate.
    submit_wave(&[
        (heavy_tt, &heavy_in, 16),
        (light_tt, &light_in, 4096),
        (giant_tt, &giant_in, 16384),
    ]);
    let after_populate = engine.store_counters();

    // Phase 2: replay the same inputs; hits accrue saved kernel time.
    submit_wave(&[
        (heavy_tt, &heavy_in, 16),
        (light_tt, &light_in, 4096),
        (giant_tt, &giant_in, 16384),
    ]);
    let counters = engine.store_counters();
    let replay_hits = counters.hits - after_populate.hits;
    rt.shutdown();
    PressureRound {
        counters,
        replay_hits,
    }
}

/// The cache-pressure budget sweep: for each eviction policy and each byte
/// budget, populate the store, replay the same task stream and report what
/// the store kept and how much kernel time the hits saved.
pub fn pressure(_ctx: &EvalContext) -> Report {
    let mut report = Report::new(
        "pressure",
        "Memo-store cache pressure — byte-budget sweep × eviction policy",
        "budget_bytes,policy,replay_hits,insertions,evictions,rejected_admissions,resident_bytes,entries,saved_kernel_ms",
    );
    // 48 KiB holds the heavy entries and barely one light entry; 192 KiB a
    // handful of light entries; `None` is the paper's unlimited table.
    let budgets: [Option<usize>; 3] = [None, Some(192 * 1024), Some(48 * 1024)];
    for budget in budgets {
        // One naming scheme per budget, used by both the human-readable
        // lines and the JSON metric prefixes so they can never drift apart.
        let (label, budget_tag) = match budget {
            None => ("unlimited".to_string(), "unlimited".to_string()),
            Some(bytes) => (
                format!("{} KiB", bytes / 1024),
                format!("{}k", bytes / 1024),
            ),
        };
        report.linef(format_args!("budget {label}:"));
        for policy in PolicyKind::ALL {
            let round = pressure_round(policy, budget);
            let c = round.counters;
            report.linef(format_args!(
                "  {:<10} replay hits {:>3}  evictions {:>3}  rejected {:>2}  resident {:>7} B  saved {:>9.3} ms",
                policy.name(),
                round.replay_hits,
                c.evictions,
                c.rejected_admissions,
                c.resident_bytes,
                c.saved_ns as f64 / 1e6,
            ));
            report.row(format!(
                "{},{},{},{},{},{},{},{},{:.4}",
                budget.unwrap_or(0),
                policy.name(),
                round.replay_hits,
                c.insertions,
                c.evictions,
                c.rejected_admissions,
                c.resident_bytes,
                c.entries,
                c.saved_ns as f64 / 1e6,
            ));
            let prefix = format!("{budget_tag}_{}", policy.name().replace('-', "_"));
            report.metric(format!("{prefix}_replay_hits"), round.replay_hits as f64);
            report.metric(format!("{prefix}_hits"), c.hits as f64);
            report.metric(format!("{prefix}_misses"), c.misses as f64);
            report.metric(format!("{prefix}_insertions"), c.insertions as f64);
            report.metric(format!("{prefix}_evictions"), c.evictions as f64);
            report.metric(
                format!("{prefix}_rejected_admissions"),
                c.rejected_admissions as f64,
            );
            report.metric(format!("{prefix}_resident_bytes"), c.resident_bytes as f64);
            report.metric(format!("{prefix}_saved_ns"), c.saved_ns as f64);
        }
    }
    report.line("Under pressure the cost-aware policy retains the expensive-to-recompute,");
    report.line("cheap-to-store entries, so replaying the stream saves the most kernel time;");
    report.line("FIFO retains whatever arrived last, and admission control keeps the giant");
    report.line("outputs from flushing the table at tight budgets.");
    report
}

/// The cold-vs-warm-start experiment: a synthetic stream whose memo store is
/// persisted and reloaded, plus an application-level warm start through the
/// apps' `RunOptions`.
pub fn warmstart(ctx: &EvalContext) -> Report {
    let mut report = Report::new(
        "warmstart",
        "Cold start vs warm start from a persisted memo store",
        "section,run,executed,tht_hits,first_taskwait_hits,hit_rate_percent",
    );

    // --- Section A: synthetic stream, hit rate at the first taskwait. ---
    let path = std::env::temp_dir().join(format!("atm-eval-warmstart-{}.bin", std::process::id()));
    const TASKS: usize = 8;
    let run_stream = |engine: Arc<AtmEngine>| -> (u64, u64) {
        let rt = RuntimeBuilder::new()
            .workers(2)
            .interceptor(engine.clone())
            .build();
        let tt = rt.register_task_type(
            TaskTypeBuilder::new("warm_square", |ctx| {
                let x = ctx.arg::<f64>(0);
                let y: Vec<f64> = x.iter().map(|v| v * v + 1.0).collect();
                ctx.out(1, &y);
            })
            .arg::<f64>()
            .out::<f64>()
            .memoizable()
            .build(),
        );
        for i in 0..TASKS {
            let input = rt
                .store()
                .register_typed(format!("in{i}"), vec![i as f64 + 0.25; 256])
                .unwrap();
            let out = rt
                .store()
                .register_zeros::<f64>(format!("out{i}"), 256)
                .unwrap();
            rt.task(tt).reads(&input).writes(&out).submit().unwrap();
        }
        // The *first* taskwait of this run: everything before it either hit
        // the warm-started table or had to execute.
        rt.taskwait();
        let stats = engine.stats();
        rt.shutdown();
        (stats.executed, stats.tht_bypassed)
    };

    let cold_engine = AtmEngine::shared(AtmConfig::static_atm());
    let (cold_executed, cold_hits) = run_stream(cold_engine.clone());
    cold_engine
        .save_store(&path)
        .expect("persisting the memo store");

    let warm_engine = AtmEngine::shared(AtmConfig::static_atm());
    let reloaded = warm_engine
        .warm_start_from(&path)
        .expect("reloading the memo store");
    let (warm_executed, warm_hits) = run_stream(warm_engine.clone());
    let _ = std::fs::remove_file(&path);

    let rate = |hits: u64| 100.0 * hits as f64 / TASKS as f64;
    report.linef(format_args!(
        "synthetic stream ({TASKS} distinct tasks, {reloaded} entries reloaded):"
    ));
    report.linef(format_args!(
        "  cold start: {cold_executed} executed, {cold_hits} THT hits at the first taskwait ({:.0}%)",
        rate(cold_hits)
    ));
    report.linef(format_args!(
        "  warm start: {warm_executed} executed, {warm_hits} THT hits at the first taskwait ({:.0}%)",
        rate(warm_hits)
    ));
    report.row(format!(
        "synthetic,cold,{cold_executed},{cold_hits},{cold_hits},{:.2}",
        rate(cold_hits)
    ));
    report.row(format!(
        "synthetic,warm,{warm_executed},{warm_hits},{warm_hits},{:.2}",
        rate(warm_hits)
    ));
    report.metric("synthetic_entries_reloaded", reloaded as f64);
    report.metric("synthetic_cold_first_taskwait_hits", cold_hits as f64);
    report.metric("synthetic_warm_first_taskwait_hits", warm_hits as f64);
    report.metric("synthetic_warm_executed", warm_executed as f64);

    // --- Section B: application-level warm start through RunOptions. ---
    let app_path =
        std::env::temp_dir().join(format!("atm-eval-warmstart-app-{}.bin", std::process::id()));
    let cold = ctx.measure(
        AppId::Blackscholes,
        &RunOptions::with_atm(ctx.workers, AtmConfig::static_atm()).saving_store(&app_path),
    );
    let warm = ctx.measure(
        AppId::Blackscholes,
        &RunOptions::with_atm(ctx.workers, AtmConfig::static_atm()).warm_started(&app_path),
    );
    let _ = std::fs::remove_file(&app_path);
    report.line("blackscholes (app-level, via RunOptions::warm_started):");
    report.linef(format_args!(
        "  cold: executed {:>5}, store hits {:>5}, wall {:.2} ms",
        cold.run.atm_stats.executed,
        cold.run.store_counters.hits,
        cold.wall_seconds * 1000.0
    ));
    report.linef(format_args!(
        "  warm: executed {:>5}, store hits {:>5}, wall {:.2} ms",
        warm.run.atm_stats.executed,
        warm.run.store_counters.hits,
        warm.wall_seconds * 1000.0
    ));
    for (label, m) in [("cold", &cold), ("warm", &warm)] {
        let seen = m.run.atm_stats.seen.max(1);
        report.row(format!(
            "blackscholes,{label},{},{},{},{:.2}",
            m.run.atm_stats.executed,
            m.run.store_counters.hits,
            m.run.store_counters.hits,
            100.0 * m.run.store_counters.hits as f64 / seen as f64
        ));
        let c = m.run.store_counters;
        report.metric(
            format!("blackscholes_{label}_executed"),
            m.run.atm_stats.executed as f64,
        );
        report.metric(format!("blackscholes_{label}_hits"), c.hits as f64);
        report.metric(format!("blackscholes_{label}_misses"), c.misses as f64);
        report.metric(
            format!("blackscholes_{label}_insertions"),
            c.insertions as f64,
        );
        report.metric(
            format!("blackscholes_{label}_evictions"),
            c.evictions as f64,
        );
        report.metric(
            format!("blackscholes_{label}_resident_bytes"),
            c.resident_bytes as f64,
        );
        report.metric(format!("blackscholes_{label}_saved_ns"), c.saved_ns as f64);
    }
    report.line("A warm-started run hits the table from its very first task: the cold run's");
    report.line("executions are the price paid exactly once per distinct input.");
    report
}

/// Per-type outcome of the mixed-policy run, pairing the engine's
/// `TypeSummary` counters with the per-type counts of the memo-decision
/// audit stream. The two views come from independent code paths; the mixed
/// experiment asserts they reconcile exactly.
#[derive(Debug, Clone)]
struct MixedTypeOutcome {
    name: String,
    seen: u64,
    executed_estimate: u64,
    training_hits: u64,
    tht_bypassed: u64,
    ikt_deferred: u64,
    down_shifts: u64,
    final_p: f64,
    steady: bool,
    /// `ThtHit` decision events of this type.
    decision_tht_hits: u64,
    /// `IktDefer` decision events of this type.
    decision_ikt_defers: u64,
    /// `TrainingAccept` decision events of this type.
    decision_accepts: u64,
    /// `TrainingReject` decision events of this type.
    decision_rejects: u64,
    /// `DownShift` decision events of this type.
    decision_down_shifts: u64,
}

impl MixedTypeOutcome {
    /// True when the audit stream agrees with the engine counters.
    fn reconciles(&self) -> bool {
        self.decision_tht_hits == self.tht_bypassed
            && self.decision_ikt_defers == self.ikt_deferred
            && self.decision_accepts + self.decision_rejects == self.training_hits
            && self.decision_down_shifts == self.down_shifts
    }
}

/// Runs three memoizable task types with different [`MemoSpec`]s — exact,
/// adaptive `τ_max`, and fixed `p` — concurrently in one runtime under the
/// spec-respecting engine mode, and returns each type's independent
/// hit/precision trajectory.
///
/// Every wave submits, per payload and per type, one *identical*
/// resubmission (the pristine input region) and one *perturbed* copy (the
/// same values with the lowest mantissa bit of some elements flipped). The
/// three policies then diverge on the same stream:
///
/// * the **exact** type hits only the identical resubmissions and executes
///   every perturbed copy;
/// * the **adaptive** type trains its own `p` down to the minimum and then
///   bypasses both kinds;
/// * the **fixed-p** type (25 %, MSB-first) never samples the perturbed
///   low-mantissa bytes, so it bypasses both kinds from its first wave —
///   without any training.
///
/// One worker keeps the task stream order (and therefore every counter)
/// deterministic; the policies, not the parallelism, are under test.
fn mixed_run(ctx: &EvalContext) -> Vec<MixedTypeOutcome> {
    const WAVES: usize = 4;
    // One payload per type: at the training ladder's smallest p only a
    // single MSB byte is sampled, so distinct payloads of one type can
    // alias during training and make the counters input-dependent — the
    // policies, not that aliasing, are what this experiment demonstrates.
    const PAYLOADS: usize = 1;
    const ELEMS: usize = 64;

    let obs = Arc::new(Observability::enabled());
    let engine =
        Arc::new(AtmEngine::new(AtmConfig::dynamic_atm()).with_observability(Arc::clone(&obs)));
    let rt = RuntimeBuilder::new()
        .workers(1)
        .observability(Arc::clone(&obs))
        .interceptor(engine.clone() as Arc<dyn atm_runtime::TaskInterceptor>)
        .build();

    let square = |ctx: &atm_runtime::TaskContext<'_>| {
        let x = ctx.arg::<f64>(0);
        let out: Vec<f64> = x.iter().map(|v| v * v).collect();
        ctx.out(1, &out);
    };
    let types = [
        rt.register_task_type(
            TaskTypeBuilder::new("mixed_exact", square)
                .arg::<f64>()
                .out::<f64>()
                .memo(MemoSpec::exact())
                .build(),
        ),
        rt.register_task_type(
            TaskTypeBuilder::new("mixed_adaptive", square)
                .arg::<f64>()
                .out::<f64>()
                .memo(MemoSpec::approximate().tau(0.2).training_window(2))
                .build(),
        ),
        rt.register_task_type(
            TaskTypeBuilder::new("mixed_fixed", square)
                .arg::<f64>()
                .out::<f64>()
                .memo(MemoSpec::fixed_precision(0.25))
                .build(),
        ),
    ];

    let payload =
        |j: usize| -> Vec<f64> { (0..ELEMS).map(|e| (j * ELEMS + e) as f64 + 1.5).collect() };
    // Low-mantissa noise, distinct per wave: flips the lowest mantissa bits
    // of every third element — invisible to MSB-first selection at small
    // p, caught by exact hashing.
    let perturbed = |j: usize, wave: usize| -> Vec<f64> {
        payload(j)
            .into_iter()
            .enumerate()
            .map(|(e, v)| {
                if e % 3 == 0 {
                    f64::from_bits(v.to_bits() ^ (wave as u64 + 1))
                } else {
                    v
                }
            })
            .collect()
    };

    let pristine: Vec<Vec<Region<f64>>> = (0..3)
        .map(|t| {
            (0..PAYLOADS)
                .map(|j| {
                    rt.store()
                        .register_typed(format!("mixed_in_{t}_{j}"), payload(j))
                        .unwrap()
                })
                .collect()
        })
        .collect();

    let mut serial = 0usize;
    for wave in 0..WAVES {
        #[allow(clippy::needless_range_loop)]
        for j in 0..PAYLOADS {
            for (t, tt) in types.iter().enumerate() {
                // Identical resubmission.
                let out = rt
                    .store()
                    .register_zeros::<f64>(format!("mixed_out{serial}"), ELEMS)
                    .unwrap();
                serial += 1;
                rt.task(*tt)
                    .reads(&pristine[t][j])
                    .writes(&out)
                    .submit()
                    .unwrap();
                // Perturbed copy.
                let noisy = rt
                    .store()
                    .register_typed(format!("mixed_noisy{serial}"), perturbed(j, wave))
                    .unwrap();
                let out = rt
                    .store()
                    .register_zeros::<f64>(format!("mixed_out{serial}"), ELEMS)
                    .unwrap();
                serial += 1;
                rt.task(*tt).reads(&noisy).writes(&out).submit().unwrap();
            }
        }
        rt.taskwait();
    }

    let summaries = engine.type_summaries();
    let decisions = obs.decisions();
    let mut outcomes: Vec<MixedTypeOutcome> = summaries
        .iter()
        .map(|(type_id, s)| {
            let t = type_id.index() as u32;
            MixedTypeOutcome {
                name: s.name.clone(),
                seen: s.seen,
                executed_estimate: s.seen - s.tht_bypassed - s.ikt_deferred,
                training_hits: s.training_hits,
                tht_bypassed: s.tht_bypassed,
                ikt_deferred: s.ikt_deferred,
                down_shifts: s.down_shifts,
                final_p: s.final_p,
                steady: s.steady,
                decision_tht_hits: decisions.count(t, MemoDecision::ThtHit),
                decision_ikt_defers: decisions.count(t, MemoDecision::IktDefer),
                decision_accepts: decisions.count(t, MemoDecision::TrainingAccept),
                decision_rejects: decisions.count(t, MemoDecision::TrainingReject),
                decision_down_shifts: decisions.count(t, MemoDecision::DownShift),
            }
        })
        .collect();
    outcomes.sort_by(|a, b| a.name.cmp(&b.name));
    rt.shutdown();
    ctx.absorb_latency(&obs.metrics());
    outcomes
}

/// Outcome of the down-shift trajectory run.
#[derive(Debug, Clone)]
struct DownShiftOutcome {
    seen: u64,
    training_hits: u64,
    tht_bypassed: u64,
    final_p: f64,
    down_shifts: u64,
    steady: bool,
    /// `DownShift` events in the memo-decision audit stream (must equal
    /// `down_shifts`).
    decision_down_shifts: u64,
    /// `TrainingAccept` + `TrainingReject` events (must equal
    /// `training_hits`).
    decision_training: u64,
}

/// Drives one adaptive type with [`MemoSpec::down_shift`] through the full
/// trajectory the satellite demands: a chaotic kernel makes a low-mantissa
/// perturbation *reject* (doubling `p`), then a streak of bit-identical
/// resubmissions is accepted with τ = 0 — far under τ_max — so the
/// controller *lowers* `p` again instead of freezing the over-precise value.
///
/// The expected stream (1 worker, tasks executed in submission order):
///
/// | task | input     | event                                            |
/// |------|-----------|--------------------------------------------------|
/// | 0    | pristine  | cold miss, executes, stores @ p = MIN            |
/// | 1    | perturbed | training hit, chaotic τ ≥ τ_max → p = 2·MIN      |
/// | 2    | pristine  | key changed with p: miss, executes, stores       |
/// | 3    | pristine  | training hit, τ = 0 (over-precise streak 1)      |
/// | 4    | pristine  | training hit, τ = 0 → **down-shift**: p = MIN    |
/// | 5    | pristine  | training hit @ MIN (task 0's entry), τ = 0       |
/// | 6    | pristine  | training hit, τ = 0; p already MIN → freeze      |
/// | 7    | pristine  | steady THT bypass                                |
fn downshift_run(ctx: &EvalContext) -> DownShiftOutcome {
    const ELEMS: usize = 64;
    let obs = Arc::new(Observability::enabled());
    let engine =
        Arc::new(AtmEngine::new(AtmConfig::dynamic_atm()).with_observability(Arc::clone(&obs)));
    let rt = RuntimeBuilder::new()
        .workers(1)
        .observability(Arc::clone(&obs))
        .interceptor(engine.clone() as Arc<dyn atm_runtime::TaskInterceptor>)
        .build();

    // A chaotic kernel: 100 logistic-map iterations (Lyapunov ln 2) amplify
    // a one-bit input perturbation into a completely decorrelated output,
    // so approximate aliasing is always caught during training.
    let tt = rt.register_task_type(
        TaskTypeBuilder::new("downshift_chaos", |ctx| {
            let x = ctx.arg::<f64>(0);
            let out: Vec<f64> = x
                .iter()
                .map(|&v| {
                    let mut y = v / (1.0 + v);
                    for _ in 0..100 {
                        y = 4.0 * y * (1.0 - y);
                    }
                    y
                })
                .collect();
            ctx.out(1, &out);
        })
        .arg::<f64>()
        .out::<f64>()
        .memo(
            MemoSpec::approximate()
                .tau(0.01)
                .training_window(2)
                .down_shift(0.1),
        )
        .build(),
    );

    let payload: Vec<f64> = (0..ELEMS).map(|e| e as f64 * 0.375 + 1.25).collect();
    // Flip the lowest mantissa bit of every third element: invisible to the
    // MSB-first byte selection at small p, catastrophic through the chaos.
    let perturbed: Vec<f64> = payload
        .iter()
        .enumerate()
        .map(|(e, &v)| {
            if e % 3 == 0 {
                f64::from_bits(v.to_bits() ^ 1)
            } else {
                v
            }
        })
        .collect();

    let pristine = rt.store().register_typed("ds_in", payload).unwrap();
    let noisy = rt.store().register_typed("ds_noisy", perturbed).unwrap();
    for (i, input) in [
        &pristine, &noisy, &pristine, &pristine, &pristine, &pristine, &pristine, &pristine,
    ]
    .iter()
    .enumerate()
    {
        let out = rt
            .store()
            .register_zeros::<f64>(format!("ds_out{i}"), ELEMS)
            .unwrap();
        rt.task(tt).reads(*input).writes(&out).submit().unwrap();
        rt.taskwait();
    }

    let summary = engine
        .type_summaries()
        .into_values()
        .next()
        .expect("one task type ran");
    rt.shutdown();
    ctx.absorb_latency(&obs.metrics());
    let decisions = obs.decisions();
    let t = tt.index() as u32;
    DownShiftOutcome {
        seen: summary.seen,
        training_hits: summary.training_hits,
        tht_bypassed: summary.tht_bypassed,
        final_p: summary.final_p,
        down_shifts: summary.down_shifts,
        steady: summary.steady,
        decision_down_shifts: decisions.count(t, MemoDecision::DownShift),
        decision_training: decisions.count(t, MemoDecision::TrainingAccept)
            + decisions.count(t, MemoDecision::TrainingReject),
    }
}

/// The mixed per-type-policy experiment: the acceptance demonstration of
/// the `MemoSpec` redesign (one runtime, three policies, independent
/// per-type trajectories), plus the adaptive down-shift trajectory.
pub fn mixed(ctx: &EvalContext) -> Report {
    let mut report = Report::new(
        "mixed",
        "Mixed per-type MemoSpec policies in one runtime (exact / adaptive / fixed-p)",
        "task_type,policy,seen,executed,training_hits,tht_bypassed,final_p,steady",
    );
    let policies = [
        ("mixed_adaptive", "approximate(tau=0.2,window=2)"),
        ("mixed_exact", "exact"),
        ("mixed_fixed", "fixed_precision(0.25)"),
    ];
    report.linef(format_args!(
        "{:<15} {:<28} {:>5} {:>9} {:>9} {:>9} {:>10} {:>7}",
        "Task type", "Policy", "seen", "executed", "training", "bypassed", "final_p", "steady"
    ));
    let mut all_reconcile = true;
    for outcome in mixed_run(ctx) {
        all_reconcile &= outcome.reconciles();
        let policy = policies
            .iter()
            .find(|(n, _)| *n == outcome.name)
            .map(|(_, p)| *p)
            .unwrap_or("?");
        report.linef(format_args!(
            "{:<15} {:<28} {:>5} {:>9} {:>9} {:>9} {:>10.5} {:>7}",
            outcome.name,
            policy,
            outcome.seen,
            outcome.executed_estimate,
            outcome.training_hits,
            outcome.tht_bypassed,
            outcome.final_p,
            outcome.steady
        ));
        report.row(format!(
            "{},{},{},{},{},{},{:.8},{}",
            outcome.name,
            policy,
            outcome.seen,
            outcome.executed_estimate,
            outcome.training_hits,
            outcome.tht_bypassed,
            outcome.final_p,
            outcome.steady
        ));
        let prefix = outcome.name.trim_start_matches("mixed_").to_string();
        report.metric(format!("{prefix}_seen"), outcome.seen as f64);
        report.metric(
            format!("{prefix}_executed"),
            outcome.executed_estimate as f64,
        );
        report.metric(
            format!("{prefix}_training_hits"),
            outcome.training_hits as f64,
        );
        report.metric(
            format!("{prefix}_tht_bypassed"),
            outcome.tht_bypassed as f64,
        );
        report.metric(format!("{prefix}_final_p"), outcome.final_p);
        report.metric(
            format!("{prefix}_steady"),
            if outcome.steady { 1.0 } else { 0.0 },
        );
        report.metric(
            format!("{prefix}_decision_tht_hits"),
            outcome.decision_tht_hits as f64,
        );
        report.metric(
            format!("{prefix}_decision_training_accepts"),
            outcome.decision_accepts as f64,
        );
        report.metric(
            format!("{prefix}_decision_training_rejects"),
            outcome.decision_rejects as f64,
        );
        report.metric(
            format!("{prefix}_decision_down_shifts"),
            outcome.decision_down_shifts as f64,
        );
    }
    report.metric("decisions_reconcile", if all_reconcile { 1.0 } else { 0.0 });
    report.linef(format_args!(
        "memo-decision audit stream reconciles with the engine counters: {}",
        if all_reconcile { "yes" } else { "NO" }
    ));
    report.line("Each type follows its own declared policy in the same runtime: the exact");
    report.line("type re-executes every perturbed input, the adaptive type trains its own p");
    report.line("and then tolerates the noise, and the fixed-p type tolerates it from the");
    report.line("start — the engine-global mode no longer decides.");

    let ds = downshift_run(ctx);
    report.line("");
    report.linef(format_args!(
        "down-shift trajectory (approximate, tau=0.01, window=2, margin=0.1): \
         seen {}, training hits {}, bypassed {}, down-shifts {}, final p {:.8}, steady {}",
        ds.seen, ds.training_hits, ds.tht_bypassed, ds.down_shifts, ds.final_p, ds.steady
    ));
    report.line("A chaotic perturbation doubles p during training; the following streak of");
    report.line("over-precise acceptances hands the doubling back instead of freezing it.");
    report.row(format!(
        "downshift_chaos,approximate(downshift=0.1),{},{},{},{},{:.8},{}",
        ds.seen,
        ds.seen - ds.tht_bypassed,
        ds.training_hits,
        ds.tht_bypassed,
        ds.final_p,
        ds.steady
    ));
    report.metric("downshift_seen", ds.seen as f64);
    report.metric("downshift_training_hits", ds.training_hits as f64);
    report.metric("downshift_tht_bypassed", ds.tht_bypassed as f64);
    report.metric("downshift_final_p", ds.final_p);
    report.metric("downshift_down_shifts", ds.down_shifts as f64);
    report.metric("downshift_steady", if ds.steady { 1.0 } else { 0.0 });
    report.metric(
        "downshift_decision_down_shifts",
        ds.decision_down_shifts as f64,
    );
    report.metric("downshift_decision_training", ds.decision_training as f64);
    report
}

/// One round of the fine-grained scheduler flood.
///
/// `chains` independent dependence chains of `chain_len` tasks each are
/// submitted behind a *gate* task that blocks until every submission is in
/// the graph, so the measured interval is pure scheduler work: dependence
/// release, queueing, dispatch and (for half the chains) THT hits. Odd
/// chains run a trivial increment kernel (always executed); even chains run
/// a memoizable constant kernel whose tasks become THT bypasses after the
/// chain's second step — the "ATM made tasks cheap" regime where the
/// runtime itself is the bottleneck.
///
/// Returns the drain throughput in tasks/sec.
fn flood_round(
    workers: usize,
    mode: QueueMode,
    chains: usize,
    chain_len: usize,
    obs: Option<&Arc<Observability>>,
) -> f64 {
    flood_round_with_affinity(workers, mode, chains, chain_len, obs, Affinity::None)
}

/// [`flood_round`] with a worker CPU placement policy, for the pinned-vs-
/// unpinned comparison of the scaling sweep.
fn flood_round_with_affinity(
    workers: usize,
    mode: QueueMode,
    chains: usize,
    chain_len: usize,
    obs: Option<&Arc<Observability>>,
    affinity: Affinity,
) -> f64 {
    use atm_sync::{Condvar, Mutex};

    let mut engine = AtmEngine::new(AtmConfig::static_atm());
    if let Some(obs) = obs {
        engine = engine.with_observability(Arc::clone(obs));
    }
    let mut builder = RuntimeBuilder::new()
        .workers(workers)
        .queue_mode(mode)
        .affinity(affinity)
        .interceptor(Arc::new(engine) as Arc<dyn atm_runtime::TaskInterceptor>);
    if let Some(obs) = obs {
        builder = builder.observability(Arc::clone(obs));
    }
    let rt = builder.build();

    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let gate_in_kernel = Arc::clone(&gate);
    let gate_tt = rt.register_task_type(
        TaskTypeBuilder::new("flood_gate", move |ctx| {
            let (lock, cvar) = &*gate_in_kernel;
            let mut open = lock.lock();
            while !*open {
                cvar.wait(&mut open);
            }
            ctx.out(0, &[1.0f64]);
        })
        .out::<f64>()
        .build(),
    );
    // No declared signature: the first task of a chain carries an extra
    // read of the gate region, later tasks only their chain cell.
    let plain_tt = rt.register_task_type(
        TaskTypeBuilder::new("flood_incr", |ctx| {
            let idx = ctx.accesses().len() - 1;
            let v = ctx.arg::<f64>(idx)[0];
            ctx.out(idx, &[v + 1.0]);
        })
        .build(),
    );
    let memo_tt = rt.register_task_type(
        TaskTypeBuilder::new("flood_memo", |ctx| {
            let idx = ctx.accesses().len() - 1;
            ctx.out(idx, &[42.0f64]);
        })
        .memoizable()
        .build(),
    );

    let gate_region = rt.store().register_zeros::<f64>("gate", 1).unwrap();
    let cells: Vec<Region<f64>> = (0..chains)
        .map(|c| rt.store().register_zeros(format!("chain{c}"), 1).unwrap())
        .collect();

    rt.task(gate_tt).writes(&gate_region).submit().unwrap();
    for step in 0..chain_len {
        for (c, cell) in cells.iter().enumerate() {
            let tt = if c % 2 == 0 { memo_tt } else { plain_tt };
            let mut task = rt.task(tt);
            if step == 0 {
                task = task.reads(&gate_region);
            }
            task.reads_writes(cell).submit().unwrap();
        }
    }

    // Everything is in the graph, piled up behind the gate: open it and
    // time the drain.
    let started = std::time::Instant::now();
    {
        let (lock, cvar) = &*gate;
        *lock.lock() = true;
        cvar.notify_all();
    }
    rt.taskwait();
    let elapsed = started.elapsed().as_secs_f64();

    // Sanity: the dataflow ran to completion in order.
    for (c, cell) in cells.iter().enumerate() {
        let expected = if c % 2 == 0 { 42.0 } else { chain_len as f64 };
        assert_eq!(
            rt.store().read(*cell).lock().as_f64(),
            &[expected],
            "chain {c} must run its full {chain_len}-task chain in order"
        );
    }
    rt.shutdown();
    (chains * chain_len) as f64 / elapsed.max(1e-9)
}

/// The chain shapes of the scaling sweep for a given scale: (chains,
/// chain_len) pairs from release-burst-heavy (few long chains: large
/// simultaneous fan-out never happens, each finish releases one successor,
/// parallelism is capped by the chain count) to steady-drain-heavy (many
/// short chains: a huge burst of ready roots, then quick drain).
fn scaling_shapes(scale: Scale) -> [(usize, usize); 3] {
    match scale {
        Scale::Tiny => [(4, 256), (32, 32), (256, 4)],
        _ => [(4, 1024), (64, 64), (1024, 4)],
    }
}

/// The scheduler-scaling experiment: tasks/sec of the fine-grained flood per
/// (chain shape × worker count × queue mode). The chain-shape sweep holds
/// the total task count constant while moving the work's structure from few
/// long dependence chains (release-bound: parallelism capped by the chain
/// count, every handoff a dependence release) to many short ones
/// (drain-bound: one huge ready burst, then queue-throughput limited).
pub fn scaling(ctx: &EvalContext) -> Report {
    let mut report = Report::new(
        "scaling",
        "Scheduler throughput — fine-grained task flood, chain shape × workers × queue mode",
        "chains,chain_len,workers,queue_mode,tasks,rounds_best_tasks_per_sec",
    );
    let rounds = match ctx.scale {
        Scale::Tiny => 2usize,
        _ => 3,
    };
    // One shared handle across every round: the experiment-level latency
    // percentiles cover the whole sweep.
    let obs = Arc::new(Observability::enabled());
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let worker_counts = [1usize, 2, 4];
    let mut best: Vec<((usize, usize, usize, QueueMode), f64)> = Vec::new();
    for (chains, chain_len) in scaling_shapes(ctx.scale) {
        let tasks = chains * chain_len;
        report.linef(format_args!(
            "{chains} chains x {chain_len} tasks ({tasks} tasks/round, best of {rounds} rounds, {cores} cores):"
        ));
        for &workers in &worker_counts {
            for mode in [QueueMode::Fifo, QueueMode::Stealing] {
                let tps = (0..rounds)
                    .map(|_| flood_round(workers, mode, chains, chain_len, Some(&obs)))
                    .fold(0.0f64, f64::max);
                report.linef(format_args!(
                    "  {workers} workers  {:<9} {:>12.0} tasks/sec",
                    mode.name(),
                    tps
                ));
                report.row(format!(
                    "{chains},{chain_len},{workers},{},{tasks},{tps:.1}",
                    mode.name()
                ));
                report.metric(
                    format!(
                        "c{chains}x{chain_len}_w{workers}_{}_tasks_per_sec",
                        mode.name()
                    ),
                    tps,
                );
                best.push(((chains, chain_len, workers, mode), tps));
            }
        }
    }
    // Headline ratios on the balanced (middle) shape, plus the burst-vs-
    // drain spread at 4 workers under stealing.
    let (bal_chains, bal_len) = scaling_shapes(ctx.scale)[1];
    let tps_of = |chains: usize, len: usize, workers: usize, mode: QueueMode| {
        best.iter()
            .find(|((c, l, w, m), _)| *c == chains && *l == len && *w == workers && *m == mode)
            .map_or(0.0, |(_, tps)| *tps)
    };
    let fifo4 = tps_of(bal_chains, bal_len, 4, QueueMode::Fifo);
    let stealing4 = tps_of(bal_chains, bal_len, 4, QueueMode::Stealing);
    if fifo4 > 0.0 {
        report.metric("w4_stealing_over_fifo", stealing4 / fifo4);
        report.linef(format_args!(
            "4-worker stealing/fifo throughput ratio ({bal_chains}x{bal_len}): {:.2}x",
            stealing4 / fifo4
        ));
    }
    let shapes = scaling_shapes(ctx.scale);
    let burst = tps_of(shapes[2].0, shapes[2].1, 4, QueueMode::Stealing);
    let release = tps_of(shapes[0].0, shapes[0].1, 4, QueueMode::Stealing);
    if release > 0.0 {
        report.metric("w4_stealing_burst_over_release", burst / release);
        report.linef(format_args!(
            "4-worker stealing, burst shape ({}x{}) over release shape ({}x{}): {:.2}x",
            shapes[2].0,
            shapes[2].1,
            shapes[0].0,
            shapes[0].1,
            burst / release
        ));
    }
    // Affinity probe: the balanced shape at 4 workers, stealing, pinned
    // round-robin vs unpinned. Pinning is a placement knob, not a speedup
    // guarantee — the ratio is reported, not asserted.
    let pinned = (0..rounds)
        .map(|_| {
            flood_round_with_affinity(
                4,
                QueueMode::Stealing,
                bal_chains,
                bal_len,
                Some(&obs),
                Affinity::RoundRobin,
            )
        })
        .fold(0.0f64, f64::max);
    report.metric("w4_pinned_tasks_per_sec", pinned);
    if stealing4 > 0.0 {
        report.metric("w4_pinned_over_unpinned", pinned / stealing4);
        report.linef(format_args!(
            "4-worker stealing pinned/unpinned throughput ratio ({bal_chains}x{bal_len}): {:.2}x",
            pinned / stealing4
        ));
    }
    report.line("Work stealing keeps a released successor on the releasing worker's own");
    report.line("deque (no shared lock in steady state); the single-FIFO mode funnels every");
    report.line("handoff through one mutex, which caps the drain rate once ATM makes the");
    report.line("tasks themselves nearly free. Few long chains bound parallelism by the");
    report.line("chain count (release-limited); many short chains flood the queue up front");
    report.line("and measure pure drain throughput.");
    ctx.absorb_latency(&obs.metrics());
    report
}

/// One round of the task-creation throughput experiment.
struct CreationRound {
    /// Submission throughput of the master thread (tasks per second spent
    /// inside the submission phase only — the drain is excluded).
    submit_tasks_per_sec: f64,
    /// Largest `live_nodes` gauge observed right after a wave was submitted.
    peak_live_nodes: u64,
    /// `live_nodes` after the final taskwait (0 when every node retired).
    final_live_nodes: u64,
    /// Total nodes retired over the run.
    retired_nodes: u64,
}

/// Submits `waves` waves of `wave_size` fine-grained inout-chain tasks in
/// groups of `batch` (1 = the singleton `task(..).submit()` path), timing
/// only the submission phase. Each task extends one of `chains` dependence
/// chains, so every submission pays dependence analysis and edge wiring —
/// the master-thread cost the paper's Figure 8 identifies as the bottleneck
/// once ATM makes tasks cheap. Workers drain concurrently; a taskwait
/// closes each wave, after which node retirement must have returned the
/// graph to (near) empty — `peak_live_nodes` stays bounded by the wave, not
/// the run.
///
/// With `independent` the batches are submitted through the declared
/// conflict-free fast path (`BatchBuilder::independent`), which skips the
/// per-batch conflict bookkeeping; the caller must pick `batch <= chains`
/// so every batch really does touch distinct chains (verified by the
/// runtime in debug builds).
fn creation_round(
    batch: usize,
    waves: usize,
    wave_size: usize,
    chains: usize,
    workers: usize,
    obs: Option<&Arc<Observability>>,
    independent: bool,
) -> CreationRound {
    let mut builder = RuntimeBuilder::new().workers(workers);
    if let Some(obs) = obs {
        builder = builder.observability(Arc::clone(obs));
    }
    let rt = builder.build();
    let incr = rt.register_task_type(
        TaskTypeBuilder::new("creation_incr", |ctx| {
            let v = ctx.arg::<f64>(0)[0];
            ctx.out(0, &[v + 1.0]);
        })
        .inout::<f64>()
        .build(),
    );
    let cells: Vec<Region<f64>> = (0..chains)
        .map(|c| rt.store().register_zeros(format!("cc{c}"), 1).unwrap())
        .collect();

    let mut submit_ns = 0u128;
    let mut peak_live_nodes = 0u64;
    for _ in 0..waves {
        let started = std::time::Instant::now();
        if batch == 1 {
            for t in 0..wave_size {
                rt.task(incr)
                    .reads_writes(&cells[t % chains])
                    .submit()
                    .expect("creation task matches the declared signature");
            }
        } else {
            let mut submitted = 0usize;
            while submitted < wave_size {
                let group = batch.min(wave_size - submitted);
                let mut staged = rt.tasks(incr);
                for t in submitted..submitted + group {
                    staged = staged.next().reads_writes(&cells[t % chains]);
                }
                if independent {
                    staged = staged.independent();
                }
                staged
                    .submit_all()
                    .expect("creation batch matches the declared signature");
                submitted += group;
            }
        }
        submit_ns += started.elapsed().as_nanos();
        peak_live_nodes = peak_live_nodes.max(rt.stats().live_nodes);
        rt.taskwait();
    }
    let stats = rt.stats();
    let total = (waves * wave_size) as f64;
    // Sanity: the chains ran to completion in dataflow order.
    for (c, cell) in cells.iter().enumerate() {
        let expected = (waves * (wave_size / chains + usize::from(c < wave_size % chains))) as f64;
        assert_eq!(rt.store().read(*cell).lock().as_f64(), &[expected]);
    }
    rt.shutdown();
    CreationRound {
        submit_tasks_per_sec: total / (submit_ns as f64 / 1e9).max(1e-9),
        peak_live_nodes,
        final_live_nodes: stats.live_nodes,
        retired_nodes: stats.retired_nodes,
    }
}

/// One round of the release-path experiment: `waves` waves, each submitting
/// `groups` independent fan-out groups — one inout writer plus `fanout`
/// readers of its cell. Every writer's finish releases all of its readers
/// at once, so the drain is dominated by the release path: under
/// aggregation the finishing worker flushes the whole reader packet as one
/// ready-queue push with one batched wakeup; with `aggregated == false`
/// each reader is published (and the outstanding counter decremented)
/// individually — the pre-aggregation baseline. Returns end-to-end
/// tasks/sec over the waves (submission included; the fan-out drain
/// dominates).
fn release_round(
    aggregated: bool,
    waves: usize,
    groups: usize,
    fanout: usize,
    workers: usize,
    obs: Option<&Arc<Observability>>,
) -> f64 {
    let mut builder = RuntimeBuilder::new()
        .workers(workers)
        .aggregated_releases(aggregated);
    if let Some(obs) = obs {
        builder = builder.observability(Arc::clone(obs));
    }
    let rt = builder.build();
    let bump = rt.register_task_type(
        TaskTypeBuilder::new("release_bump", |ctx| {
            let v = ctx.arg::<f64>(0)[0];
            ctx.out(0, &[v + 1.0]);
        })
        .inout::<f64>()
        .build(),
    );
    let probe = rt.register_task_type(
        TaskTypeBuilder::new("release_probe", |ctx| {
            std::hint::black_box(ctx.arg::<f64>(0)[0]);
        })
        .arg::<f64>()
        .build(),
    );
    let cells: Vec<Region<f64>> = (0..groups)
        .map(|g| rt.store().register_zeros(format!("rg{g}"), 1).unwrap())
        .collect();
    let started = std::time::Instant::now();
    for _ in 0..waves {
        for cell in &cells {
            rt.task(bump)
                .reads_writes(cell)
                .submit()
                .expect("release writer matches the declared signature");
            for _ in 0..fanout {
                rt.task(probe)
                    .reads(cell)
                    .submit()
                    .expect("release reader matches the declared signature");
            }
        }
        rt.taskwait();
    }
    let elapsed = started.elapsed().as_secs_f64();
    for cell in &cells {
        assert_eq!(rt.store().read(*cell).lock().as_f64(), &[waves as f64]);
    }
    rt.shutdown();
    (waves * groups * (1 + fanout)) as f64 / elapsed.max(1e-9)
}

/// Parameters of the creation experiment at a given scale: (batch sizes,
/// waves, wave_size, chains, workers).
fn creation_params(scale: Scale) -> ([usize; 4], usize, usize, usize) {
    match scale {
        Scale::Tiny => ([1, 8, 64, 512], 4, 1024, 64),
        _ => ([1, 8, 64, 512], 8, 4096, 256),
    }
}

/// The task-creation experiment: submission throughput vs batch size, plus
/// the bounded-memory evidence of graph-node retirement.
pub fn creation(ctx: &EvalContext) -> Report {
    let mut report = Report::new(
        "creation",
        "Task-creation throughput — batched vs singleton submission, peak live graph nodes",
        "batch,submit_tasks_per_sec,peak_live_nodes,final_live_nodes,retired_nodes",
    );
    let (batches, waves, wave_size, chains) = creation_params(ctx.scale);
    let workers = ctx.workers.clamp(1, 4);
    let total = waves * wave_size;
    report.linef(format_args!(
        "{waves} waves x {wave_size} tasks over {chains} inout chains ({total} tasks, {workers} workers draining):"
    ));
    let obs = Arc::new(Observability::enabled());
    let mut singleton_tps = 0.0f64;
    let mut last_round_final_live = 0u64;
    for batch in batches {
        let round = creation_round(batch, waves, wave_size, chains, workers, Some(&obs), false);
        if batch == 1 {
            singleton_tps = round.submit_tasks_per_sec;
        }
        report.linef(format_args!(
            "  batch {batch:>4}: {:>12.0} submitted tasks/sec   peak live nodes {:>6} (wave = {wave_size})   final {} retired {}",
            round.submit_tasks_per_sec,
            round.peak_live_nodes,
            round.final_live_nodes,
            round.retired_nodes,
        ));
        report.row(format!(
            "{batch},{:.1},{},{},{}",
            round.submit_tasks_per_sec,
            round.peak_live_nodes,
            round.final_live_nodes,
            round.retired_nodes
        ));
        report.metric(
            format!("b{batch}_submit_tasks_per_sec"),
            round.submit_tasks_per_sec,
        );
        report.metric(
            format!("b{batch}_peak_live_nodes"),
            round.peak_live_nodes as f64,
        );
        if batch == 512 && singleton_tps > 0.0 {
            report.metric(
                "batch512_over_singleton",
                round.submit_tasks_per_sec / singleton_tps,
            );
            report.linef(format_args!(
                "batch-512 / singleton submission throughput: {:.2}x",
                round.submit_tasks_per_sec / singleton_tps
            ));
        }
        last_round_final_live = round.final_live_nodes;
    }
    report.metric("total_tasks", total as f64);
    report.metric("final_live_nodes", last_round_final_live as f64);
    // The declared-independent fast path: with batch == chains every batch
    // touches distinct chains, so the submitter may declare it conflict-free
    // and `submit_all` skips the per-batch conflict bookkeeping.
    let ind_batch = 512.min(wave_size);
    let conflict = creation_round(
        ind_batch,
        waves,
        wave_size,
        ind_batch,
        workers,
        Some(&obs),
        false,
    );
    let fast = creation_round(
        ind_batch,
        waves,
        wave_size,
        ind_batch,
        workers,
        Some(&obs),
        true,
    );
    report.metric(
        "conflict_pass_submit_tasks_per_sec",
        conflict.submit_tasks_per_sec,
    );
    report.metric(
        "independent_batch_submit_tasks_per_sec",
        fast.submit_tasks_per_sec,
    );
    if conflict.submit_tasks_per_sec > 0.0 {
        report.metric(
            "independent_over_conflict",
            fast.submit_tasks_per_sec / conflict.submit_tasks_per_sec,
        );
        report.linef(format_args!(
            "declared-independent batch-{ind_batch} over the conflict pass: {:.2}x",
            fast.submit_tasks_per_sec / conflict.submit_tasks_per_sec
        ));
    }
    // Release-path comparison: one writer releasing a packet of readers per
    // finish, flushed aggregated (one push, one batched wakeup, one
    // outstanding decrement per cycle) vs per-task (the pre-aggregation
    // baseline, selectable via `RuntimeBuilder::aggregated_releases`).
    let rel_aggregated = release_round(true, waves, 8, 32, workers, Some(&obs));
    let rel_baseline = release_round(false, waves, 8, 32, workers, Some(&obs));
    report.metric("release_aggregated_tasks_per_sec", rel_aggregated);
    report.metric("release_unaggregated_tasks_per_sec", rel_baseline);
    if rel_baseline > 0.0 {
        report.metric(
            "release_aggregated_over_unaggregated",
            rel_aggregated / rel_baseline,
        );
        report.linef(format_args!(
            "aggregated / per-task release flush on the 1->32 fan-out shape: {:.2}x",
            rel_aggregated / rel_baseline
        ));
    }
    report.line("Batching takes the submission lock, each slab shard's write lock and each");
    report.line("touched live-index shard once per batch instead of once per task, so the");
    report.line("master thread's creation throughput rises with the batch size; node");
    report.line("retirement keeps the peak live-node count bounded by the in-flight wave");
    report.line("no matter how many tasks the run submits in total.");
    ctx.absorb_latency(&obs.metrics());
    report
}

/// One offered-load point of the serving experiment.
struct ServeRound {
    /// Arrivals the open-loop schedule generated (accepted or not).
    submitted: u64,
    /// Requests admitted and completed (`submitted - rejected`).
    completed: u64,
    /// Arrivals shed with [`ServeError::Overloaded`].
    rejected: u64,
    /// Completed requests per second of wall clock (generation + drain).
    achieved_rps: f64,
    /// Request-latency median (submit → last task finished), nanoseconds.
    p50_ns: u64,
    /// Request-latency 99th percentile, nanoseconds.
    p99_ns: u64,
    /// The round's full latency snapshot (one fresh service per round).
    latency: MetricsSnapshot,
}

/// Runs one open-loop point: `sessions` tenant threads each register
/// `lanes` private regions and submit two-task chain requests against
/// them at `offered_rps / sessions`, scheduled by absolute arrival
/// deadlines. The generator is open-loop — a slow service does not slow
/// the arrivals down (a thread that falls behind its schedule submits the
/// missed arrivals back to back), so overload cannot hide in a closed
/// feedback loop: past saturation the admission window fills and arrivals
/// are shed with [`ServeError::Overloaded`] instead of queueing without
/// bound. Each kernel spins `spin_us` of wall clock, so one request costs
/// `2 * spin_us` of worker time on its lane.
fn serve_round(
    workers: usize,
    spin_us: u64,
    sessions: usize,
    lanes: usize,
    duration_ms: u64,
    offered_rps: f64,
) -> ServeRound {
    let serve = ServeEngine::new(
        ServeConfig::default()
            .workers(workers)
            .max_inflight_requests(64)
            .max_live_tasks(4096),
    );
    let tt = serve.register_task_type(
        TaskTypeBuilder::new("serve_spin", move |ctx| {
            let v = ctx.arg::<f64>(0)[0];
            let started = Instant::now();
            while started.elapsed() < Duration::from_micros(spin_us) {
                std::hint::spin_loop();
            }
            ctx.out(0, &[v + 1.0]);
        })
        .inout::<f64>()
        .build(),
    );

    let wall_started = Instant::now();
    let (submitted, rejected) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|_| {
                let serve = &serve;
                scope.spawn(move || {
                    let mut session = serve.session().expect("the service is accepting");
                    let cells: Vec<Region<f64>> = (0..lanes)
                        .map(|l| {
                            session
                                .register_zeros(format!("lane{l}"), 1)
                                .expect("fresh session lane")
                        })
                        .collect();
                    let interval = Duration::from_secs_f64(sessions as f64 / offered_rps);
                    let deadline = Duration::from_millis(duration_ms);
                    let started = Instant::now();
                    let mut submitted = 0u64;
                    let mut rejected = 0u64;
                    let mut n = 0u32;
                    loop {
                        let arrival = interval * n;
                        if arrival >= deadline {
                            break;
                        }
                        let elapsed = started.elapsed();
                        if arrival > elapsed {
                            std::thread::sleep(arrival - elapsed);
                        }
                        let lane = &cells[n as usize % lanes];
                        submitted += 1;
                        match session
                            .request()
                            .task(tt)
                            .reads_writes(lane)
                            .task(tt)
                            .reads_writes(lane)
                            .submit()
                        {
                            Ok(_request) => {}
                            Err(ServeError::Overloaded { .. }) => rejected += 1,
                            Err(err) => panic!("serve round submission failed: {err}"),
                        }
                        n += 1;
                    }
                    session
                        .close()
                        .expect("close waits for the session's in-flight requests");
                    (submitted, rejected)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("generator thread"))
            .fold((0u64, 0u64), |acc, (s, r)| (acc.0 + s, acc.1 + r))
    });
    let report = serve.drain();
    let wall_seconds = wall_started.elapsed().as_secs_f64();
    let requests = report.latency.get(LatencyMetric::Request);
    let completed = submitted - rejected;
    // Every admitted request must have reported exactly one latency sample.
    assert_eq!(requests.count, completed, "admitted vs recorded requests");
    ServeRound {
        submitted,
        completed,
        rejected,
        achieved_rps: completed as f64 / wall_seconds.max(1e-9),
        p50_ns: requests.p50(),
        p99_ns: requests.p99(),
        latency: report.latency,
    }
}

/// Parameters of the serving experiment at a given scale: (per-kernel spin
/// µs, sessions, lanes per session, milliseconds per point, offered-load
/// ladder in requests/sec). The top rate is picked well past the worker
/// capacity `workers / (2 * spin_us)` so the last point always saturates.
fn serve_params(scale: Scale) -> (u64, usize, usize, u64, [f64; 3]) {
    match scale {
        Scale::Tiny => (50, 2, 2, 200, [1_000.0, 5_000.0, 40_000.0]),
        _ => (50, 4, 2, 300, [2_000.0, 10_000.0, 80_000.0]),
    }
}

/// The serving experiment: the runtime as a long-running multi-tenant
/// service under an open-loop offered-load sweep — request latency
/// percentiles per point, the admission-controlled saturation throughput,
/// and the overload shed at the top of the ladder.
pub fn serve(ctx: &EvalContext) -> Report {
    let mut report = Report::new(
        "serve",
        "Serving — open-loop offered-load sweep: request latency and admission-controlled saturation",
        "offered_rps,submitted,completed,rejected,achieved_rps,request_p50_ns,request_p99_ns",
    );
    let (spin_us, sessions, lanes, duration_ms, rates) = serve_params(ctx.scale);
    let workers = ctx.workers.clamp(1, 4);
    report.linef(format_args!(
        "{sessions} tenant sessions x {lanes} lanes, 2-task chain requests (~{} us service), {workers} workers, {duration_ms} ms per point:",
        2 * spin_us
    ));
    let mut merged = MetricsSnapshot::empty();
    let mut saturation_rps = 0.0f64;
    let mut top_rejected = 0u64;
    for (i, &offered) in rates.iter().enumerate() {
        let round = serve_round(workers, spin_us, sessions, lanes, duration_ms, offered);
        report.linef(format_args!(
            "  offered {offered:>8.0} req/s: achieved {:>8.0} req/s   rejected {:>6}/{:<6}   p50 {:>9} ns   p99 {:>9} ns",
            round.achieved_rps, round.rejected, round.submitted, round.p50_ns, round.p99_ns,
        ));
        report.row(format!(
            "{offered},{},{},{},{:.1},{},{}",
            round.submitted,
            round.completed,
            round.rejected,
            round.achieved_rps,
            round.p50_ns,
            round.p99_ns
        ));
        report.metric(format!("load{i}_offered_rps"), offered);
        report.metric(format!("load{i}_achieved_rps"), round.achieved_rps);
        report.metric(format!("load{i}_rejected"), round.rejected as f64);
        report.metric(format!("load{i}_request_p50_ns"), round.p50_ns as f64);
        report.metric(format!("load{i}_request_p99_ns"), round.p99_ns as f64);
        saturation_rps = saturation_rps.max(round.achieved_rps);
        top_rejected = round.rejected;
        merged.merge(&round.latency);
    }
    let requests = merged.get(LatencyMetric::Request);
    report.metric("request_p50_ns", requests.p50() as f64);
    report.metric("request_p99_ns", requests.p99() as f64);
    report.metric("request_count", requests.count as f64);
    report.metric("saturation_rps", saturation_rps);
    report.metric("overload_rejected", top_rejected as f64);
    report.line("The generator is open-loop: arrivals follow the offered schedule no matter");
    report.line("how the service is doing. Below saturation the service tracks the offered");
    report.line("rate; past it the in-flight window fills, arrivals are shed with");
    report.line("`Overloaded` (retry-after) instead of queueing without bound, and achieved");
    report.line("throughput plateaus at the admission-controlled capacity.");
    ctx.absorb_latency(&merged);
    report
}

struct MemopathRound {
    lookups: u64,
    hits: u64,
    hits_per_sec: f64,
}

/// One timed hit-storm round for the memo-path experiment: `readers`
/// threads hammer a 64-key hot set of a prefilled 2⁶ × 16 store for
/// `duration`, timing every 64th lookup into `obs` (same sampling overhead
/// in both modes, so the A/B stays fair). The hot set is never evicted, so
/// every lookup hits and the rate isolates pure read-path cost.
fn memopath_round(
    locked_reads: bool,
    readers: usize,
    duration: Duration,
    obs: Option<&Observability>,
) -> MemopathRound {
    const KEYS: usize = 512;
    const HOT: usize = 64;
    let mut config = StoreConfig::paper(6, 16);
    config.locked_reads = locked_reads;
    let store = MemoStore::new(config);
    let keys: Vec<EntryKey> = (0..KEYS)
        .map(|i| EntryKey::new(TaskTypeId::from_raw(0), i as u64, 1.0))
        .collect();
    for (i, key) in keys.iter().enumerate() {
        let values = vec![i as f32; 16];
        let outputs = Arc::new(vec![OutputSnapshot {
            region: RegionId::from_raw(0),
            elem_range: 0..values.len(),
            data: RegionData::F32(values),
        }]);
        store.insert(*key, TaskId::from_raw(i as u64), outputs, 1_000);
    }
    let started = Instant::now();
    let (lookups, hits) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|r| {
                let store = &store;
                let keys = &keys;
                scope.spawn(move || {
                    let mut lookups = 0u64;
                    let mut hits = 0u64;
                    // Stagger the readers across the hot set so they still
                    // collide on the same buckets but not in lockstep.
                    let mut i = r * (HOT / readers.max(1));
                    while started.elapsed() < duration {
                        for _ in 0..256 {
                            let key = &keys[i % HOT];
                            i += 1;
                            let hit = if lookups & 63 == 0 {
                                let probe = Instant::now();
                                let hit = store.lookup(key).is_some();
                                let ns = probe.elapsed().as_nanos() as u64;
                                if let Some(obs) = obs {
                                    obs.record_latency(LatencyMetric::MemoLookup, r, ns);
                                }
                                hit
                            } else {
                                store.lookup(key).is_some()
                            };
                            lookups += 1;
                            hits += u64::from(hit);
                        }
                    }
                    (lookups, hits)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("reader thread"))
            .fold((0u64, 0u64), |acc, (l, h)| (acc.0 + l, acc.1 + h))
    });
    let wall_seconds = started.elapsed().as_secs_f64();
    MemopathRound {
        lookups,
        hits,
        hits_per_sec: hits as f64 / wall_seconds.max(1e-9),
    }
}

/// The memo-path experiment: a multi-reader hit-storm A/B-ing the seqlock
/// read path against the mutex-guarded baseline on an otherwise identical
/// store, reporting aggregate hit throughput per mode and their ratio.
pub fn memopath(ctx: &EvalContext) -> Report {
    let mut report = Report::new(
        "memopath",
        "Memo-path reads — seqlock set-associative lookups vs the locked-bucket baseline",
        "mode,readers,lookups,hits,hits_per_sec",
    );
    let readers = ctx.workers.clamp(1, 4);
    let duration = match ctx.scale {
        Scale::Tiny => Duration::from_millis(80),
        _ => Duration::from_millis(250),
    };
    report.linef(format_args!(
        "{readers} reader threads on a 64-key hot set (2^6 buckets x 16 ways, 512 resident), {} ms per mode:",
        duration.as_millis()
    ));
    let obs = Observability::enabled();
    let mut rates = [0.0f64; 2];
    for (slot, (mode, locked)) in [("seqlock", false), ("locked", true)]
        .into_iter()
        .enumerate()
    {
        let round = memopath_round(locked, readers, duration, Some(&obs));
        assert_eq!(
            round.hits, round.lookups,
            "the hot set is never evicted, every lookup must hit"
        );
        report.linef(format_args!(
            "  {mode:<8} {:>12.0} hits/s   ({} lookups)",
            round.hits_per_sec, round.lookups
        ));
        report.row(format!(
            "{mode},{readers},{},{},{:.1}",
            round.lookups, round.hits, round.hits_per_sec
        ));
        report.metric(format!("{mode}_hits_per_sec"), round.hits_per_sec);
        report.metric(format!("{mode}_lookups"), round.lookups as f64);
        report.metric(format!("{mode}_hits"), round.hits as f64);
        rates[slot] = round.hits_per_sec;
    }
    if rates[1] > 0.0 {
        report.metric("seqlock_over_locked", rates[0] / rates[1]);
    }
    report.line("Both modes run the same store geometry and the same sampling schedule;");
    report.line("the ratio isolates read-path cost — a version-validated atomic probe plus");
    report.line("a hazard-protected Arc clone versus taking the bucket writer mutex on");
    report.line("every read. The acceptance test (ignored, run isolated) requires the");
    report.line("seqlock path to win at >= 4 hardware threads.");
    ctx.absorb_latency(&obs.metrics());
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_apps::Scale;

    #[test]
    fn experiment_ids_round_trip() {
        for e in Experiment::ALL {
            assert_eq!(Experiment::parse(e.id()), Some(e));
        }
        assert_eq!(Experiment::parse("figure42"), None);
        assert_eq!(all_experiments().len(), Experiment::ALL.len());
    }

    #[test]
    fn tables_render_all_six_benchmarks() {
        let ctx = EvalContext::new(Scale::Tiny, 1);
        let t1 = table1(&ctx);
        assert_eq!(t1.csv_rows.len(), 6);
        for id in AppId::ALL {
            assert!(t1.text.contains(id.name()), "Table I must mention {id}");
        }
        let t2 = table2(&ctx);
        assert_eq!(t2.csv_rows.len(), 6);
        assert!(t2.text.contains("Ltraining"));
    }

    #[test]
    fn pressure_cost_aware_beats_fifo_at_the_tightest_budget() {
        let tight = Some(48 * 1024);
        let fifo = pressure_round(PolicyKind::Fifo, tight);
        let cost = pressure_round(PolicyKind::CostAware, tight);
        assert!(
            cost.counters.saved_ns >= fifo.counters.saved_ns,
            "cost-aware must save at least as much kernel time as FIFO \
             at the tightest budget ({} vs {} ns)",
            cost.counters.saved_ns,
            fifo.counters.saved_ns
        );
        assert!(
            cost.replay_hits > 0,
            "cost-aware must retain something worth hitting"
        );
        // The giant outputs do not fit a 48 KiB budget at all.
        assert!(fifo.counters.rejected_admissions > 0);
        assert!(
            fifo.counters.resident_bytes <= 48 * 1024,
            "the budget must hold"
        );
    }

    #[test]
    fn pressure_unlimited_budget_never_evicts_by_budget() {
        let round = pressure_round(PolicyKind::Fifo, None);
        assert_eq!(round.counters.rejected_admissions, 0);
        assert_eq!(
            round.counters.evictions, 0,
            "ways=1024 and no budget must keep every entry"
        );
        // Replay hits everything that was stored.
        assert_eq!(round.replay_hits, round.counters.insertions);
    }

    /// Acceptance criterion of the MemoSpec redesign: one runtime runs an
    /// exact type, an adaptive type and a fixed-p type concurrently, and
    /// each type's hit/precision trajectory is independent.
    #[test]
    fn mixed_policies_have_independent_per_type_trajectories() {
        let ctx = EvalContext::new(Scale::Tiny, 1);
        let outcomes = mixed_run(&ctx);
        assert_eq!(outcomes.len(), 3);
        let by_name = |name: &str| {
            outcomes
                .iter()
                .find(|o| o.name == name)
                .unwrap_or_else(|| panic!("no outcome for {name}"))
        };
        // 4 waves × 2 submissions (identical + perturbed) per type.
        for outcome in &outcomes {
            assert_eq!(outcome.seen, 8, "{}: stream size", outcome.name);
        }

        // Exact: p pinned at 100 %, steady from the start, never trains.
        // Hits exactly the identical resubmissions (waves 2-4) and executes
        // every perturbed copy.
        let exact = by_name("mixed_exact");
        assert_eq!(exact.final_p, 1.0);
        assert!(exact.steady);
        assert_eq!(exact.training_hits, 0);
        assert_eq!(exact.tht_bypassed, 3, "exact hits only identical inputs");
        assert_eq!(exact.executed_estimate, 5);

        // Adaptive: trains its own p on its own stream (training hits
        // execute), freezes at the minimum and then bypasses both the
        // identical and the perturbed submissions.
        let adaptive = by_name("mixed_adaptive");
        assert!(adaptive.steady, "window of 2 must finish training");
        assert_eq!(adaptive.training_hits, 2);
        assert!(
            adaptive.final_p < 0.01,
            "identical-at-MSB inputs keep p minimal, got {}",
            adaptive.final_p
        );
        assert_eq!(
            adaptive.executed_estimate, 3,
            "1 cold miss + 2 training executions"
        );
        assert_eq!(adaptive.tht_bypassed, 5);

        // Fixed p: steady at its declared precision with no training, and
        // immune to the low-mantissa noise from the very first wave.
        let fixed = by_name("mixed_fixed");
        assert!((fixed.final_p - 0.25).abs() < 1e-12);
        assert!(fixed.steady);
        assert_eq!(fixed.training_hits, 0);
        assert_eq!(fixed.executed_estimate, 1, "only the cold miss runs");
        assert_eq!(fixed.tht_bypassed, 7);

        // Independence: three different final precisions in one engine.
        assert!(exact.final_p > fixed.final_p);
        assert!(fixed.final_p > adaptive.final_p);
    }

    #[test]
    fn mixed_report_carries_per_type_metrics() {
        let ctx = EvalContext::new(Scale::Tiny, 1);
        let report = mixed(&ctx);
        assert_eq!(report.csv_rows.len(), 4);
        for prefix in ["exact", "adaptive", "fixed", "downshift"] {
            for metric in ["final_p", "training_hits", "tht_bypassed", "steady"] {
                let name = format!("{prefix}_{metric}");
                assert!(
                    report.metrics.iter().any(|(n, _)| *n == name),
                    "metric {name} missing from the mixed report"
                );
            }
        }
        let reconcile = report
            .metrics
            .iter()
            .find(|(n, _)| n == "decisions_reconcile")
            .expect("mixed must report the reconciliation flag")
            .1;
        assert_eq!(reconcile, 1.0, "audit stream must match engine counters");
    }

    /// Satellite acceptance: after a rejection doubled `p`, a streak of
    /// over-precise acceptances lowers it again — the controller no longer
    /// only doubles.
    #[test]
    fn downshift_trajectory_lowers_p_after_the_doubling() {
        let ctx = EvalContext::new(Scale::Tiny, 1);
        let outcome = downshift_run(&ctx);
        assert_eq!(outcome.seen, 8);
        // Task 1 (perturbed, chaotic) was a training hit that rejected and
        // doubled p; tasks 3-6 were training hits that accepted with τ = 0.
        assert_eq!(outcome.training_hits, 5);
        // Exactly one down-shift handed the doubling back …
        assert_eq!(outcome.down_shifts, 1);
        // … so the frozen p is back at the ladder's minimum.
        assert!(
            (outcome.final_p - atm_core::Percentage::MIN.fraction()).abs() < 1e-15,
            "final p must be back at MIN, got {}",
            outcome.final_p
        );
        assert!(outcome.steady, "the window after the down-shift freezes");
        // Only the final steady-state resubmission bypassed.
        assert_eq!(outcome.tht_bypassed, 1);
    }

    /// Acceptance criterion: the memo-decision audit stream reconciles
    /// exactly with the engine's per-type counters — for every policy,
    /// `ThtHit` events equal `tht_bypassed`, `IktDefer` events equal
    /// `ikt_deferred`, `TrainingAccept + TrainingReject` equal
    /// `training_hits`, and `DownShift` events equal `down_shifts`.
    #[test]
    fn mixed_decision_stream_reconciles_with_type_summaries() {
        let ctx = EvalContext::new(Scale::Tiny, 1);
        for outcome in mixed_run(&ctx) {
            assert_eq!(
                outcome.decision_tht_hits, outcome.tht_bypassed,
                "{}: ThtHit events vs tht_bypassed",
                outcome.name
            );
            assert_eq!(
                outcome.decision_ikt_defers, outcome.ikt_deferred,
                "{}: IktDefer events vs ikt_deferred",
                outcome.name
            );
            assert_eq!(
                outcome.decision_accepts + outcome.decision_rejects,
                outcome.training_hits,
                "{}: training events vs training_hits",
                outcome.name
            );
            assert_eq!(
                outcome.decision_down_shifts, outcome.down_shifts,
                "{}: DownShift events vs down_shifts",
                outcome.name
            );
            assert!(outcome.reconciles());
        }
        let ds = downshift_run(&ctx);
        assert_eq!(ds.decision_down_shifts, ds.down_shifts);
        assert_eq!(ds.decision_training, ds.training_hits);
        assert!(ds.down_shifts > 0, "the trajectory must down-shift");
        // Both micro-runs fed the context's latency accumulator.
        let latency = ctx.take_latency();
        assert!(latency.get(LatencyMetric::TaskLatency).count > 0);
    }

    /// Overhead guard: a *disabled* observability handle must not slow the
    /// hot paths down. Compares creation submit throughput with no handle
    /// vs a disabled handle; wall-clock sensitive, so (like the other
    /// throughput comparisons) it is ignored in the parallel suite, run
    /// isolated in CI, and passes if any of three attempts stays within
    /// the 2% budget.
    #[test]
    #[ignore = "wall-clock comparison; run isolated: cargo test -- --ignored --test-threads=1"]
    fn disabled_observability_costs_under_two_percent() {
        let disabled = Arc::new(Observability::disabled());
        let mut attempts = Vec::new();
        for _ in 0..3 {
            let none = creation_round(64, 4, 2048, 64, 2, None, false).submit_tasks_per_sec;
            let with =
                creation_round(64, 4, 2048, 64, 2, Some(&disabled), false).submit_tasks_per_sec;
            assert!(none > 0.0 && with > 0.0);
            if with >= none * 0.98 {
                return;
            }
            attempts.push((none, with));
        }
        panic!(
            "a disabled observability handle must cost < 2% submit throughput; \
             (none, disabled) tasks/s per attempt: {attempts:?}"
        );
    }

    /// The flood completes its dataflow correctly in every configuration
    /// (the assertions live inside `flood_round`) and reports a sane rate.
    #[test]
    fn scaling_flood_round_is_correct_in_every_configuration() {
        for workers in [1usize, 2, 4] {
            for mode in [QueueMode::Fifo, QueueMode::Stealing] {
                let tps = flood_round(workers, mode, 8, 25, None);
                assert!(
                    tps > 0.0,
                    "{workers} workers / {mode:?}: throughput must be positive"
                );
            }
        }
    }

    /// Acceptance criterion: 4-worker stealing beats 4-worker FIFO on the
    /// fine-grained flood. A genuine parallelism comparison needs ≥ 4
    /// hardware threads; on smaller machines (where 4 workers timeshare
    /// one core and the comparison measures the OS scheduler, not ours)
    /// only completion is asserted. A wall-clock comparison must not share
    /// the machine with the rest of the test suite, so the test is ignored
    /// in the parallel run and CI executes it in a dedicated
    /// single-threaded step. On a shared runner any single comparison can
    /// still be disturbed by background load, so it passes if stealing
    /// wins any of three independent best-of-3 attempts; three straight
    /// losses are not scheduling noise.
    #[test]
    #[ignore = "wall-clock comparison; run isolated: cargo test -- --ignored --test-threads=1"]
    fn scaling_stealing_beats_fifo_at_four_workers() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let best = |mode: QueueMode| {
            (0..3)
                .map(|_| flood_round(4, mode, 16, 250, None))
                .fold(0.0f64, f64::max)
        };
        if cores < 4 {
            let (fifo, stealing) = (best(QueueMode::Fifo), best(QueueMode::Stealing));
            assert!(fifo > 0.0 && stealing > 0.0);
            return;
        }
        let mut attempts = Vec::new();
        for _ in 0..3 {
            let fifo = best(QueueMode::Fifo);
            let stealing = best(QueueMode::Stealing);
            assert!(fifo > 0.0 && stealing > 0.0);
            if stealing > fifo {
                return;
            }
            attempts.push((fifo, stealing));
        }
        panic!(
            "4-worker stealing must beat 4-worker FIFO on {cores} cores; \
             (fifo, stealing) tasks/s per attempt: {attempts:?}"
        );
    }

    #[test]
    fn scaling_report_covers_the_full_sweep() {
        let ctx = EvalContext::new(Scale::Tiny, 2);
        let report = scaling(&ctx);
        assert_eq!(
            report.csv_rows.len(),
            18,
            "3 chain shapes x 3 worker counts x 2 modes"
        );
        for (chains, chain_len) in scaling_shapes(Scale::Tiny) {
            for workers in [1, 2, 4] {
                for mode in ["fifo", "stealing"] {
                    let name = format!("c{chains}x{chain_len}_w{workers}_{mode}_tasks_per_sec");
                    let value = report
                        .metrics
                        .iter()
                        .find(|(n, _)| *n == name)
                        .unwrap_or_else(|| panic!("metric {name} missing"))
                        .1;
                    assert!(value > 0.0, "{name} must be positive");
                }
            }
        }
        assert!(report
            .metrics
            .iter()
            .any(|(n, _)| n == "w4_stealing_over_fifo"));
        assert!(report
            .metrics
            .iter()
            .any(|(n, _)| n == "w4_stealing_burst_over_release"));
        assert!(
            report
                .metrics
                .iter()
                .any(|(n, _)| n == "w4_pinned_over_unpinned"),
            "the affinity comparison must be reported"
        );
    }

    /// The creation sweep reports a throughput per batch size and the
    /// bounded-memory evidence: peak live nodes never exceed the in-flight
    /// wave (constant in the total task count) and everything retires.
    #[test]
    fn creation_report_shows_bounded_live_nodes() {
        let ctx = EvalContext::new(Scale::Tiny, 2);
        let report = creation(&ctx);
        let (batches, _waves, wave_size, _chains) = creation_params(Scale::Tiny);
        assert_eq!(report.csv_rows.len(), batches.len());
        let metric = |name: &str| -> f64 {
            report
                .metrics
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("metric {name} missing"))
                .1
        };
        for batch in batches {
            assert!(metric(&format!("b{batch}_submit_tasks_per_sec")) > 0.0);
            let peak = metric(&format!("b{batch}_peak_live_nodes"));
            assert!(
                peak <= wave_size as f64,
                "batch {batch}: peak live nodes {peak} must stay within one wave ({wave_size})"
            );
        }
        assert_eq!(
            metric("final_live_nodes"),
            0.0,
            "every node must retire once its wave drains"
        );
        assert!(report
            .metrics
            .iter()
            .any(|(n, _)| n == "batch512_over_singleton"));
        assert!(
            report
                .metrics
                .iter()
                .any(|(n, _)| n == "independent_over_conflict"),
            "the declared-independent fast-path comparison must be reported"
        );
        assert!(
            report
                .metrics
                .iter()
                .any(|(n, _)| n == "release_aggregated_over_unaggregated"),
            "the release-flush comparison must be reported"
        );
    }

    /// The release-path round completes its fan-out dataflow correctly in
    /// both flush modes (the assertions live inside `release_round`) and
    /// reports a sane rate.
    #[test]
    fn release_round_is_correct_in_both_flush_modes() {
        for aggregated in [true, false] {
            let tps = release_round(aggregated, 2, 4, 8, 2, None);
            assert!(
                tps > 0.0,
                "aggregated={aggregated}: throughput must be positive"
            );
        }
    }

    /// Tentpole acceptance: the aggregated release flush (one ready-queue
    /// push, one batched wakeup and one outstanding decrement per finish
    /// cycle) must beat the per-task publish baseline on the fan-out-heavy
    /// 4-wave shape at 4 workers — the shape where every writer's finish
    /// releases a 64-reader packet. A genuine comparison needs ≥ 4
    /// hardware threads; on smaller machines only completion is asserted.
    /// Wall-clock sensitive, so it is ignored in the parallel suite, run
    /// isolated in CI, and passes if aggregation wins any of three
    /// attempts.
    #[test]
    #[ignore = "wall-clock comparison; run isolated: cargo test -- --ignored --test-threads=1"]
    fn creation_aggregated_release_beats_per_task_publish() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores < 4 {
            assert!(release_round(true, 2, 4, 16, 2, None) > 0.0);
            assert!(release_round(false, 2, 4, 16, 2, None) > 0.0);
            return;
        }
        let best = |aggregated: bool| {
            (0..3)
                .map(|_| release_round(aggregated, 4, 16, 64, 4, None))
                .fold(0.0f64, f64::max)
        };
        let mut attempts = Vec::new();
        for _ in 0..3 {
            let baseline = best(false);
            let aggregated = best(true);
            assert!(baseline > 0.0 && aggregated > 0.0);
            if aggregated > baseline {
                return;
            }
            attempts.push((baseline, aggregated));
        }
        panic!(
            "the aggregated release flush must out-pace per-task publishes on \
             {cores} cores; (per-task, aggregated) tasks/s per attempt: {attempts:?}"
        );
    }

    /// Acceptance criterion: batch-512 submission throughput beats the
    /// singleton path — the lock amortisation must be visible end to end.
    /// Wall-clock sensitive, so (like the stealing-beats-fifo test) it is
    /// ignored in the parallel suite and run isolated in CI; a single
    /// comparison can be disturbed by background load, so it passes if the
    /// batch wins any of three attempts.
    #[test]
    #[ignore = "wall-clock comparison; run isolated: cargo test -- --ignored --test-threads=1"]
    fn creation_batch512_beats_singleton_submission() {
        let mut attempts = Vec::new();
        for _ in 0..3 {
            let singleton = creation_round(1, 4, 2048, 64, 2, None, false).submit_tasks_per_sec;
            let batched = creation_round(512, 4, 2048, 64, 2, None, false).submit_tasks_per_sec;
            assert!(singleton > 0.0 && batched > 0.0);
            if batched > singleton {
                return;
            }
            attempts.push((singleton, batched));
        }
        panic!(
            "batch-512 submission must out-pace singleton submission; \
             (singleton, batched) tasks/s per attempt: {attempts:?}"
        );
    }

    /// Satellite acceptance: a batch declared conflict-free skips the
    /// per-batch conflict pass, so at batch == chains == 512 the fast path
    /// must out-pace the ordinary bookkeeping on the same workload.
    /// Wall-clock sensitive, so it is ignored in the parallel suite, run
    /// isolated in CI, and passes if the fast path wins any of three
    /// attempts.
    #[test]
    #[ignore = "wall-clock comparison; run isolated: cargo test -- --ignored --test-threads=1"]
    fn creation_independent_batch_beats_the_conflict_pass() {
        let mut attempts = Vec::new();
        for _ in 0..3 {
            let conflict = creation_round(512, 4, 2048, 512, 2, None, false).submit_tasks_per_sec;
            let fast = creation_round(512, 4, 2048, 512, 2, None, true).submit_tasks_per_sec;
            assert!(conflict > 0.0 && fast > 0.0);
            if fast > conflict {
                return;
            }
            attempts.push((conflict, fast));
        }
        panic!(
            "the declared-independent batch path must out-pace the conflict pass; \
             (conflict, independent) tasks/s per attempt: {attempts:?}"
        );
    }

    /// Aggregate submission throughput of `threads` submitter threads, each
    /// feeding `per_thread` singleton inout tasks into its own private
    /// chain. Disjoint regions map to disjoint submission-lock shards, so
    /// concurrent submitters must not serialise on one global lock. Two
    /// workers drain concurrently; only the submission phase is timed.
    fn submit_flood_tasks_per_sec(threads: usize, per_thread: usize) -> f64 {
        let rt = RuntimeBuilder::new().workers(2).build();
        let incr = rt.register_task_type(
            TaskTypeBuilder::new("flood_incr", |ctx| {
                let v = ctx.arg::<f64>(0)[0];
                ctx.out(0, &[v + 1.0]);
            })
            .inout::<f64>()
            .build(),
        );
        let cells: Vec<Region<f64>> = (0..threads)
            .map(|t| rt.store().register_zeros(format!("fl{t}"), 1).unwrap())
            .collect();
        let started = std::time::Instant::now();
        std::thread::scope(|scope| {
            for cell in &cells {
                let rt = &rt;
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        rt.task(incr)
                            .reads_writes(cell)
                            .submit()
                            .expect("flood task matches the declared signature");
                    }
                });
            }
        });
        let submit_seconds = started.elapsed().as_secs_f64();
        rt.taskwait();
        for cell in &cells {
            assert_eq!(rt.store().read(*cell).lock().as_f64(), &[per_thread as f64]);
        }
        rt.shutdown();
        (threads * per_thread) as f64 / submit_seconds.max(1e-9)
    }

    /// Tentpole acceptance: the sharded submission path lets independent
    /// sessions submit concurrently — four submitter threads on private
    /// regions must move the same total task count faster than one thread
    /// (a single global submission lock would serialise them to at best
    /// single-thread throughput). A genuine concurrency comparison needs
    /// ≥ 4 hardware threads; on smaller machines (where the submitters
    /// timeshare one core and the comparison measures the OS scheduler)
    /// only completion is asserted. Wall-clock sensitive, so it is ignored
    /// in the parallel suite, run isolated in CI, and passes if the
    /// concurrent submitters win any of three attempts.
    #[test]
    #[ignore = "wall-clock comparison; run isolated: cargo test -- --ignored --test-threads=1"]
    fn concurrent_submitters_outpace_a_single_submitter() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores < 4 {
            assert!(submit_flood_tasks_per_sec(1, 4_096) > 0.0);
            assert!(submit_flood_tasks_per_sec(4, 1_024) > 0.0);
            return;
        }
        let mut attempts = Vec::new();
        for _ in 0..3 {
            let single = submit_flood_tasks_per_sec(1, 16_384);
            let four = submit_flood_tasks_per_sec(4, 4_096);
            assert!(single > 0.0 && four > 0.0);
            if four > single {
                return;
            }
            attempts.push((single, four));
        }
        panic!(
            "four concurrent submitters must out-pace one submitter moving the \
             same total on {cores} cores; (single, four-thread) tasks/s per \
             attempt: {attempts:?}"
        );
    }

    /// The serving sweep covers every offered-load point, records nonzero
    /// request percentiles, finds a saturation throughput and sheds the
    /// top point's overload through admission control instead of queueing
    /// it (the ISSUE's overload acceptance).
    #[test]
    fn serve_report_covers_the_sweep_and_sheds_overload() {
        let ctx = EvalContext::new(Scale::Tiny, 2);
        let report = serve(&ctx);
        let (_, _, _, _, rates) = serve_params(Scale::Tiny);
        assert_eq!(report.csv_rows.len(), rates.len());
        let metric = |name: &str| -> f64 {
            report
                .metrics
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("metric {name} missing"))
                .1
        };
        assert!(metric("request_p50_ns") > 0.0);
        assert!(metric("request_p99_ns") >= metric("request_p50_ns"));
        assert!(metric("request_count") > 0.0);
        assert!(metric("saturation_rps") > 0.0);
        assert!(
            metric("overload_rejected") > 0.0,
            "the top offered load (2x worker capacity) must be shed via Overloaded"
        );
        for i in 0..rates.len() {
            assert!(metric(&format!("load{i}_achieved_rps")) > 0.0);
            assert!(metric(&format!("load{i}_request_p50_ns")) > 0.0);
            assert!(metric(&format!("load{i}_request_p99_ns")) > 0.0);
        }
        // The request histogram also feeds the shared latency accumulator.
        let latency = ctx.take_latency();
        assert_eq!(
            latency.get(LatencyMetric::Request).count as f64,
            metric("request_count")
        );
    }

    /// Acceptance criterion: a 4-worker service under mid load (a quarter
    /// of its worker capacity) keeps p99 request latency bounded while
    /// sustaining the offered, admission-controlled throughput — no
    /// unbounded queue can build below saturation. The spinning kernels
    /// need real parallelism: on machines under 4 hardware threads the
    /// workers timeshare one core, the offered load sits at or above the
    /// true capacity and the round measures the OS scheduler — there only
    /// completion and accounting are asserted. Wall-clock sensitive, so it
    /// is ignored in the parallel suite, run isolated (release) in CI, and
    /// passes if any of three attempts meets all three bounds.
    #[test]
    #[ignore = "wall-clock comparison; run isolated: cargo test -- --ignored --test-threads=1"]
    fn serve_four_workers_keep_p99_bounded_at_mid_load() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores < 4 {
            let round = serve_round(4, 50, 4, 2, 200, 5_000.0);
            assert_eq!(round.completed + round.rejected, round.submitted);
            assert!(round.completed > 0 && round.p50_ns > 0);
            return;
        }
        let offered = 10_000.0;
        let mut attempts = Vec::new();
        for _ in 0..3 {
            // 4 workers x (1 / 100 µs) ≈ 40k req/s capacity; offer 10k.
            let round = serve_round(4, 50, 4, 2, 400, offered);
            let sustained = round.achieved_rps >= 0.5 * offered;
            // Bounded: two orders of magnitude above the ~100 µs service
            // time still catches runaway queueing by a wide margin.
            let bounded = round.p99_ns < 50_000_000;
            let admitted = round.rejected * 50 <= round.submitted;
            if sustained && bounded && admitted {
                return;
            }
            attempts.push((round.achieved_rps, round.p99_ns, round.rejected));
        }
        panic!(
            "a 4-worker service at quarter load on {cores} cores must sustain \
             >= {:.0} req/s with p99 < 50 ms and <= 2% shed; (achieved_rps, \
             p99_ns, rejected) per attempt: {attempts:?}",
            0.5 * offered
        );
    }

    /// The memopath report carries both modes' throughput, a finite A/B
    /// ratio, and the sampled lookup-latency percentiles every experiment
    /// now publishes next to the release percentiles.
    #[test]
    fn memopath_report_has_both_modes_and_lookup_percentiles() {
        let ctx = EvalContext::new(Scale::Tiny, 2);
        let report = memopath(&ctx);
        assert_eq!(report.csv_rows.len(), 2, "one row per mode");
        let metric = |name: &str| -> f64 {
            report
                .metrics
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("metric {name} missing"))
                .1
        };
        assert!(metric("seqlock_hits_per_sec") > 0.0);
        assert!(metric("locked_hits_per_sec") > 0.0);
        assert!(metric("seqlock_hits") > 0.0);
        assert!(metric("locked_hits") > 0.0);
        let ratio = metric("seqlock_over_locked");
        assert!(ratio.is_finite() && ratio > 0.0);
        // The sampled probes feed the shared latency accumulator that
        // `run_experiment` turns into memo_lookup_p50/p99_ns.
        let latency = ctx.take_latency();
        let lookup = latency.get(LatencyMetric::MemoLookup);
        assert!(lookup.count > 0);
        assert!(lookup.p50() > 0 && lookup.p99() >= lookup.p50());
    }

    /// Acceptance criterion (the ISSUE's release gate): under a 4-reader
    /// hit-storm the lock-free seqlock read path out-runs the mutex-guarded
    /// baseline. A genuine contention comparison needs >= 4 hardware
    /// threads; on smaller machines only completion is asserted. Like the
    /// other wall-clock comparisons it is ignored in the parallel suite,
    /// run isolated in CI, takes best-of-3 per mode and passes if the
    /// seqlock path wins any of three attempts.
    #[test]
    #[ignore = "wall-clock comparison; run isolated: cargo test -- --ignored --test-threads=1"]
    fn memopath_seqlock_beats_locked_reads() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let duration = Duration::from_millis(150);
        if cores < 4 {
            let round = memopath_round(false, 2, duration, None);
            assert_eq!(round.hits, round.lookups);
            assert!(round.hits_per_sec > 0.0);
            return;
        }
        let best = |locked: bool| {
            (0..3)
                .map(|_| memopath_round(locked, 4, duration, None).hits_per_sec)
                .fold(0.0f64, f64::max)
        };
        let mut attempts = Vec::new();
        for _ in 0..3 {
            let seqlock = best(false);
            let locked = best(true);
            assert!(seqlock > 0.0 && locked > 0.0);
            if seqlock > locked {
                return;
            }
            attempts.push((seqlock, locked));
        }
        panic!(
            "lock-free reads must beat the locked baseline under a 4-reader \
             hit-storm on {cores} cores; (seqlock, locked) hits/s per \
             attempt: {attempts:?}"
        );
    }

    #[test]
    fn warmstart_first_taskwait_has_nonzero_hit_rate() {
        let ctx = EvalContext::new(Scale::Tiny, 1);
        let report = warmstart(&ctx);
        let metric = |name: &str| -> f64 {
            report
                .metrics
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("metric {name} missing"))
                .1
        };
        assert_eq!(metric("synthetic_cold_first_taskwait_hits"), 0.0);
        assert!(
            metric("synthetic_warm_first_taskwait_hits") > 0.0,
            "a warm-started run must hit the table at its first taskwait"
        );
        assert_eq!(metric("synthetic_warm_executed"), 0.0);
        assert!(
            metric("blackscholes_warm_hits") >= metric("blackscholes_cold_hits"),
            "app-level warm start must not hit less than the cold run"
        );
        assert!(metric("blackscholes_warm_hits") > 0.0);
    }

    #[test]
    fn figure9_reports_rows_for_every_benchmark_with_monotone_curves() {
        let ctx = EvalContext::new(Scale::Tiny, 1);
        let report = figure9(&ctx);
        for id in AppId::ALL {
            let rows: Vec<&String> = report
                .csv_rows
                .iter()
                .filter(|r| r.starts_with(id.short_name()))
                .collect();
            assert!(!rows.is_empty(), "{id} must contribute rows to figure 9");
            // Cumulative fractions must be non-decreasing and end at 1.0
            // (or stay at 0.0 when no reuse was generated at all).
            let fractions: Vec<f64> = rows
                .iter()
                .map(|r| r.rsplit(',').next().unwrap().parse().unwrap())
                .collect();
            assert!(
                fractions.windows(2).all(|w| w[1] >= w[0] - 1e-9),
                "{id}: curve not monotone: {fractions:?}"
            );
            let last = *fractions.last().unwrap();
            assert!(
                last == 0.0 || (last - 1.0).abs() < 1e-9,
                "{id}: curve must end at 0 or 1, got {last}"
            );
        }
        // At least one benchmark must actually generate reuse at tiny scale.
        assert!(
            report.csv_rows.iter().any(|r| r.ends_with("1.0000")),
            "no benchmark generated any reuse"
        );
    }
}
