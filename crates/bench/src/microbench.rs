//! A minimal, dependency-free micro-benchmark harness.
//!
//! The bench targets under `benches/` are plain `harness = false` binaries
//! built on this module: each benchmark warms up, then runs batches of the
//! measured closure until a time budget is exhausted, and reports the median
//! per-iteration time. The goal is the *relative ordering* of configurations
//! (execute vs copy, hash cost vs `p`, …), matching how the paper presents
//! its micro-measurements; it is not a statistics suite.

use std::time::{Duration, Instant};

/// Default time budget per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(400);
/// Default warm-up budget per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(80);

/// Result of one measured benchmark.
#[derive(Debug, Clone, Copy)]
pub struct BenchResult {
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Total iterations executed during measurement.
    pub iterations: u64,
}

impl BenchResult {
    /// Throughput in MiB/s given the bytes processed per iteration.
    pub fn mib_per_second(&self, bytes_per_iter: usize) -> f64 {
        if self.median_ns <= 0.0 {
            return f64::INFINITY;
        }
        (bytes_per_iter as f64 / (1024.0 * 1024.0)) / (self.median_ns * 1e-9)
    }
}

/// Measures `f`, printing the median per-iteration time under `label`.
pub fn bench(group: &str, label: &str, mut f: impl FnMut()) -> BenchResult {
    // Warm-up: also calibrates the batch size so one batch is neither a
    // single enormous iteration nor millions of timer calls.
    let warmup_start = Instant::now();
    let mut warmup_iters = 0u64;
    while warmup_start.elapsed() < WARMUP_BUDGET {
        f();
        warmup_iters += 1;
    }
    let per_iter = WARMUP_BUDGET.as_nanos() as u64 / warmup_iters.max(1);
    let batch = (10_000_000 / per_iter.max(1)).clamp(1, 10_000);

    let mut samples = Vec::new();
    let mut iterations = 0u64;
    let measure_start = Instant::now();
    while measure_start.elapsed() < MEASURE_BUDGET {
        let batch_start = Instant::now();
        for _ in 0..batch {
            f();
        }
        let elapsed = batch_start.elapsed().as_nanos() as f64;
        samples.push(elapsed / batch as f64);
        iterations += batch;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median_ns = samples.get(samples.len() / 2).copied().unwrap_or(f64::NAN);
    let result = BenchResult {
        median_ns,
        iterations,
    };
    println!(
        "{group}/{label:<28} median {:>12.1} ns/iter  ({iterations} iters)",
        median_ns
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_positive_time_for_real_work() {
        let mut acc = 0u64;
        let result = bench("selftest", "sum", || {
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
        });
        assert!(result.median_ns > 0.0);
        assert!(result.iterations > 0);
        assert!(acc > 0);
    }

    #[test]
    fn throughput_is_finite_for_positive_times() {
        let result = BenchResult {
            median_ns: 1000.0,
            iterations: 1,
        };
        let mib = result.mib_per_second(1024 * 1024);
        assert!((mib - 1e6).abs() < 1e-6);
    }
}
