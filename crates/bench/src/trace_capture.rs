//! Chrome-trace export: runs a small memoizable workload with tracing and
//! observability enabled and merges everything the stack recorded into one
//! Chrome Trace Event Format JSON file that <https://ui.perfetto.dev>
//! opens directly.
//!
//! The trace carries four kinds of tracks under one process:
//!
//! * **per-worker state tracks** (`tid = worker`): the
//!   [`ThreadState`](atm_runtime::ThreadState) intervals of the runtime
//!   tracer, the trace equivalent of the paper's Figure 7/8 state
//!   breakdown;
//! * **per-worker task tracks** (`tid = 1000 + worker`): one span per task
//!   (named after its task type) whose args carry the memo decision(s) the
//!   engine took for it, joined from the decision audit stream by task id;
//! * **ready-depth counter** (`tid = 9998`): the scheduler's ready-queue
//!   depth samples;
//! * **store-bytes counter** (`tid = 9999`): the memo store's byte
//!   occupancy samples. The store stamps these on its own monotonic clock,
//!   so this track is internally ordered but not aligned with the tracer
//!   timeline.

use atm_core::{AtmConfig, AtmEngine, MemoSpec};
use atm_obs::{
    json_f64, ChromeTraceBuilder, CounterSample, DecisionRecord, DecisionSnapshot, Observability,
    TaskSpan,
};
use atm_runtime::{ReadySample, RuntimeBuilder, TaskTypeBuilder, TraceEvent};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// The single process id used by the exported trace.
const PID: u64 = 1;
/// Task-span tracks live at `SPAN_TID_BASE + worker`.
const SPAN_TID_BASE: u64 = 1000;
/// The ready-queue-depth counter track.
const READY_TID: u64 = 9998;
/// The store-byte-occupancy counter track.
const STORE_TID: u64 = 9999;

/// Assembles a Chrome-trace JSON array from the raw observability material.
///
/// Inputs are expected in the order their producers return them (tracer
/// events sorted by start time, spans by `(start_ns, task_id)`, counter
/// samples by time); the assembly preserves that order per `tid`, which is
/// what [`ChromeTraceBuilder`] requires.
pub fn assemble_chrome_trace(
    events: &[TraceEvent],
    ready: &[ReadySample],
    spans: &[TaskSpan],
    decisions: &DecisionSnapshot,
    store_bytes: &[CounterSample],
    type_name: impl Fn(u32) -> Option<String>,
) -> String {
    let mut trace = ChromeTraceBuilder::new();
    trace.process_name(PID, "atm-eval");

    // Name every track up front (metadata events carry no timestamp).
    let mut workers: Vec<usize> = events
        .iter()
        .map(|e| e.worker)
        .chain(spans.iter().map(|s| s.worker))
        .collect();
    workers.sort_unstable();
    workers.dedup();
    for &w in &workers {
        trace.thread_name(PID, w as u64, &format!("worker {w} states"));
        trace.thread_name(PID, SPAN_TID_BASE + w as u64, &format!("worker {w} tasks"));
    }
    trace.thread_name(PID, READY_TID, "ready queue depth");
    trace.thread_name(PID, STORE_TID, "memo-store bytes");

    // Per-worker state intervals: the global sort by start time keeps each
    // worker's tid internally non-decreasing.
    for event in events {
        trace.complete(
            PID,
            event.worker as u64,
            event.state.label(),
            event.start_ns,
            event.end_ns,
            &[],
        );
    }

    // Task spans, with the memo decision(s) of each task joined in by id.
    // The decision rings are bounded, so the join is best-effort: tasks
    // whose records were overwritten simply carry no decision args.
    let mut by_task: HashMap<u64, Vec<&DecisionRecord>> = HashMap::new();
    for record in &decisions.records {
        by_task.entry(record.task_id).or_default().push(record);
    }
    for span in spans {
        let name = type_name(span.task_type).unwrap_or_else(|| format!("type {}", span.task_type));
        let mut args: Vec<(&str, String)> = Vec::new();
        let joined;
        if let Some(records) = by_task.get(&span.task_id) {
            joined = records
                .iter()
                .map(|r| r.decision.name())
                .collect::<Vec<_>>()
                .join("+");
            args.push(("decision", format!("\"{joined}\"")));
            if let Some(first) = records.first() {
                args.push(("tau", json_f64(first.tau)));
                args.push(("p", json_f64(first.p)));
            }
        }
        args.push((
            "latency_ns",
            format!("{}", span.end_ns.saturating_sub(span.start_ns)),
        ));
        trace.complete(
            PID,
            SPAN_TID_BASE + span.worker as u64,
            &name,
            span.start_ns,
            span.end_ns,
            &args,
        );
    }

    for sample in ready {
        trace.counter(
            PID,
            READY_TID,
            "ready_depth",
            sample.at_ns,
            sample.depth as f64,
        );
    }
    for sample in store_bytes {
        trace.counter(
            PID,
            STORE_TID,
            "store_bytes",
            sample.t_ns,
            sample.value as f64,
        );
    }

    trace.finish()
}

/// Runs the capture workload — a memoizable square kernel resubmitted over
/// a handful of inputs under Dynamic ATM, with tracing and observability
/// on — and returns the assembled Chrome-trace JSON.
pub fn capture_chrome_trace(workers: usize) -> String {
    const WAVES: usize = 3;
    const PAYLOADS: usize = 4;
    const ELEMS: usize = 256;

    let obs = Arc::new(Observability::enabled());
    let engine =
        Arc::new(AtmEngine::new(AtmConfig::dynamic_atm()).with_observability(Arc::clone(&obs)));
    let rt = RuntimeBuilder::new()
        .workers(workers.max(1))
        .tracing(true)
        .observability(Arc::clone(&obs))
        .interceptor(engine.clone() as Arc<dyn atm_runtime::TaskInterceptor>)
        .build();

    let square = |ctx: &atm_runtime::TaskContext<'_>| {
        let x = ctx.arg::<f64>(0);
        let out: Vec<f64> = x.iter().map(|v| v * v).collect();
        ctx.out(1, &out);
    };
    let exact = rt.register_task_type(
        TaskTypeBuilder::new("trace_square_exact", square)
            .arg::<f64>()
            .out::<f64>()
            .memo(MemoSpec::exact())
            .build(),
    );
    let adaptive = rt.register_task_type(
        TaskTypeBuilder::new("trace_square_adaptive", square)
            .arg::<f64>()
            .out::<f64>()
            .memo(MemoSpec::approximate().tau(0.2).training_window(2))
            .build(),
    );

    let inputs: Vec<_> = (0..PAYLOADS)
        .map(|j| {
            let payload: Vec<f64> = (0..ELEMS).map(|e| (j * ELEMS + e) as f64 + 0.5).collect();
            rt.store()
                .register_typed(format!("trace_in_{j}"), payload)
                .unwrap()
        })
        .collect();

    let mut serial = 0usize;
    for _ in 0..WAVES {
        for input in &inputs {
            for tt in [exact, adaptive] {
                let out = rt
                    .store()
                    .register_zeros::<f64>(format!("trace_out_{serial}"), ELEMS)
                    .unwrap();
                serial += 1;
                rt.task(tt).reads(input).writes(&out).submit().unwrap();
            }
        }
        rt.taskwait();
    }

    let events = rt.tracer().events();
    let ready = rt.tracer().ready_samples();
    let spans = obs.spans();
    let decisions = obs.decisions();
    let store_bytes = obs.store_bytes_samples();
    rt.shutdown();

    assemble_chrome_trace(&events, &ready, &spans, &decisions, &store_bytes, |t| {
        obs.type_name(t)
    })
}

/// Captures a trace (see [`capture_chrome_trace`]) and writes it to `path`.
pub fn write_chrome_trace(path: &Path, workers: usize) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, capture_chrome_trace(workers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_obs::MemoDecision;
    use atm_runtime::ThreadState;

    #[test]
    fn assembly_merges_all_four_track_kinds() {
        let events = [TraceEvent {
            worker: 0,
            state: ThreadState::TaskExecution,
            start_ns: 1_000,
            end_ns: 5_000,
        }];
        let ready = [ReadySample {
            at_ns: 1_500,
            depth: 3,
        }];
        let spans = [TaskSpan {
            worker: 0,
            task_id: 7,
            task_type: 2,
            start_ns: 1_200,
            end_ns: 4_800,
        }];
        let mut decisions = DecisionSnapshot::default();
        decisions.records.push(DecisionRecord {
            task_type: 2,
            task_id: 7,
            decision: MemoDecision::ThtHit,
            metric_value: 0.0,
            tau: 0.2,
            p: 0.5,
            t_ns: 1_300,
        });
        let store_bytes = [CounterSample {
            t_ns: 2_000,
            value: 4_096,
        }];
        let json = assemble_chrome_trace(&events, &ready, &spans, &decisions, &store_bytes, |t| {
            (t == 2).then(|| "square".to_string())
        });
        assert!(json.contains("\"name\":\"Task Execution\""));
        assert!(json.contains("\"name\":\"square\""));
        assert!(json.contains("\"decision\":\"tht_hit\""));
        assert!(json.contains("\"tau\":0.2"));
        assert!(json.contains("\"name\":\"ready_depth\""));
        assert!(json.contains("\"name\":\"store_bytes\""));
        assert!(json.contains("\"name\":\"worker 0 states\""));
        assert!(json.contains("\"name\":\"worker 0 tasks\""));
        // Span track lives away from the state track.
        assert!(json.contains(&format!("\"tid\":{}", SPAN_TID_BASE)));
    }

    #[test]
    fn unknown_types_and_missing_decisions_still_export() {
        let spans = [TaskSpan {
            worker: 1,
            task_id: 42,
            task_type: 9,
            start_ns: 100,
            end_ns: 200,
        }];
        let json =
            assemble_chrome_trace(&[], &[], &spans, &DecisionSnapshot::default(), &[], |_| {
                None
            });
        assert!(json.contains("\"name\":\"type 9\""));
        assert!(json.contains("\"latency_ns\":100"));
        assert!(!json.contains("\"decision\""));
    }

    #[test]
    fn captured_workload_produces_a_rich_trace() {
        let json = capture_chrome_trace(2);
        // Real state intervals, named task spans with decisions, and both
        // counter tracks must all be present.
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("trace_square_exact"));
        assert!(json.contains("trace_square_adaptive"));
        assert!(json.contains("\"decision\":\"tht_hit\""));
        assert!(json.contains("\"name\":\"ready_depth\""));
        assert!(json.contains("\"name\":\"store_bytes\""));
        assert!(json.lines().count() > 50, "the trace must not be trivial");
    }
}
