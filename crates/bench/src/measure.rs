//! Measurement plumbing shared by all experiments: workload caching,
//! baseline timing, the selection-percentage sweep and the Oracle
//! configurations derived from it.

use atm_apps::{build_app, AppId, AppRun, BenchmarkApp, RunOptions, Scale};
use atm_core::{AtmConfig, Percentage};
use atm_obs::MetricsSnapshot;
use atm_sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// One measured run of one application under one configuration.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Wall-clock seconds of the parallel section.
    pub wall_seconds: f64,
    /// Correctness percentage against the sequential reference (Figures 4/5).
    pub correctness: f64,
    /// Reuse percentage over the memoizable tasks (§IV-C).
    pub reuse_percent: f64,
    /// Memory overhead of ATM relative to the application footprint (Table III).
    pub memory_overhead_percent: f64,
    /// The selection percentage in effect at the end of the run (Dynamic ATM).
    pub final_p: Option<f64>,
    /// The full run record (statistics, reuse events, traces).
    pub run: AppRun,
}

/// One point of the selection-percentage sweep of Figure 5.
#[derive(Debug, Clone)]
pub struct PSweepEntry {
    /// The constant selection percentage used for the run.
    pub p: f64,
    /// The resulting program correctness (%).
    pub correctness: f64,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// Reuse percentage.
    pub reuse_percent: f64,
}

/// The two Oracle configurations of Figures 3/4/6 for one application.
#[derive(Debug, Clone)]
pub struct OracleTable {
    /// Smallest constant `p` whose run kept correctness at 100 %.
    pub oracle_100: Option<PSweepEntry>,
    /// Smallest constant `p` whose run kept correctness ≥ 95 %.
    pub oracle_95: Option<PSweepEntry>,
}

/// Shared context for all experiments: caches the generated workloads, their
/// sequential references, the baseline timings and the per-app `p` sweeps so
/// the full `atm-eval all` run does not regenerate them per figure.
pub struct EvalContext {
    /// Problem-size scale.
    pub scale: Scale,
    /// Default number of worker threads (the paper evaluates on 8 cores).
    pub workers: usize,
    apps: Mutex<HashMap<AppId, Arc<dyn BenchmarkApp>>>,
    baselines: Mutex<HashMap<(AppId, usize), f64>>,
    sweeps: Mutex<HashMap<AppId, Arc<Vec<PSweepEntry>>>>,
    /// Latency histograms accumulated by every run since the last
    /// [`EvalContext::take_latency`] — the per-experiment percentile source.
    latency: Mutex<MetricsSnapshot>,
}

impl EvalContext {
    /// Creates a context.
    pub fn new(scale: Scale, workers: usize) -> Self {
        EvalContext {
            scale,
            workers,
            apps: Mutex::new(HashMap::new()),
            baselines: Mutex::new(HashMap::new()),
            sweeps: Mutex::new(HashMap::new()),
            latency: Mutex::new(MetricsSnapshot::empty()),
        }
    }

    /// Folds a run's latency histograms into the context accumulator.
    pub fn absorb_latency(&self, snapshot: &MetricsSnapshot) {
        self.latency.lock().merge(snapshot);
    }

    /// Drains the latency accumulator (the caller gets everything absorbed
    /// since the previous drain — one experiment's worth when called by
    /// [`crate::run_experiment`]).
    pub fn take_latency(&self) -> MetricsSnapshot {
        std::mem::replace(&mut *self.latency.lock(), MetricsSnapshot::empty())
    }

    /// The (cached) generated workload of one application.
    pub fn app(&self, id: AppId) -> Arc<dyn BenchmarkApp> {
        let mut apps = self.apps.lock();
        Arc::clone(
            apps.entry(id)
                .or_insert_with(|| Arc::from(build_app(id, self.scale))),
        )
    }

    /// Runs one application under the given options and packages the result.
    pub fn measure(&self, id: AppId, options: &RunOptions) -> Measurement {
        let app = self.app(id);
        // Every measured run records latency histograms (baselines too, so
        // the speedup comparisons stay like-for-like) and feeds the
        // per-experiment percentile metrics.
        let options = options.clone().observed();
        let run = app.run_tasked(&options);
        self.absorb_latency(&run.latency);
        let correctness = app.correctness_percent(&run.output);
        let final_p = run
            .type_summaries
            .values()
            .find(|s| s.seen > 0)
            .map(|s| s.final_p);
        Measurement {
            wall_seconds: run.wall.as_secs_f64(),
            correctness,
            reuse_percent: run.reuse_percent(),
            memory_overhead_percent: run.memory_overhead_percent(),
            final_p,
            run,
        }
    }

    /// Baseline (no ATM) wall-clock seconds for `(app, workers)`, cached.
    pub fn baseline_seconds(&self, id: AppId, workers: usize) -> f64 {
        if let Some(&cached) = self.baselines.lock().get(&(id, workers)) {
            return cached;
        }
        let measurement = self.measure(id, &RunOptions::baseline(workers));
        let wall = measurement.wall_seconds;
        self.baselines.lock().insert((id, workers), wall);
        wall
    }

    /// Speedup of a measurement against the cached baseline with the same
    /// number of workers (Eq. 2 of the paper).
    pub fn speedup(&self, id: AppId, workers: usize, measurement: &Measurement) -> f64 {
        let baseline = self.baseline_seconds(id, workers);
        if measurement.wall_seconds <= 0.0 {
            return f64::INFINITY;
        }
        baseline / measurement.wall_seconds
    }

    /// The Figure 5 sweep: one run per value of the training ladder
    /// (p = 2⁻¹⁵ … 100 %), with the IKT enabled, at the default worker count.
    pub fn p_sweep(&self, id: AppId) -> Arc<Vec<PSweepEntry>> {
        if let Some(cached) = self.sweeps.lock().get(&id) {
            return Arc::clone(cached);
        }
        let mut entries = Vec::with_capacity(Percentage::STEPS + 1);
        for step in 0..=Percentage::STEPS {
            let p = Percentage::from_training_step(step).fraction();
            let measurement = self.measure(
                id,
                &RunOptions::with_atm(self.workers, AtmConfig::fixed_p(p)),
            );
            entries.push(PSweepEntry {
                p,
                correctness: measurement.correctness,
                wall_seconds: measurement.wall_seconds,
                reuse_percent: measurement.reuse_percent,
            });
        }
        let entries = Arc::new(entries);
        self.sweeps.lock().insert(id, Arc::clone(&entries));
        entries
    }

    /// Derives the Oracle configurations from the sweep: the smallest `p`
    /// that keeps correctness at 100 % (within floating-point noise) and the
    /// smallest `p` that keeps correctness ≥ 95 %.
    pub fn oracle(&self, id: AppId) -> OracleTable {
        let sweep = self.p_sweep(id);
        let oracle_100 = sweep.iter().find(|e| e.correctness >= 99.999_999).cloned();
        let oracle_95 = sweep.iter().find(|e| e.correctness >= 95.0).cloned();
        OracleTable {
            oracle_100,
            oracle_95,
        }
    }

    /// Measures an Oracle configuration (a fixed-`p` run) at a given worker
    /// count, or `None` when no `p` in the sweep met the correctness bound.
    pub fn measure_oracle(
        &self,
        id: AppId,
        workers: usize,
        min_correctness: f64,
    ) -> Option<Measurement> {
        let sweep = self.p_sweep(id);
        let entry = sweep.iter().find(|e| e.correctness >= min_correctness)?;
        Some(self.measure(
            id,
            &RunOptions::with_atm(workers, AtmConfig::fixed_p(entry.p)),
        ))
    }
}

/// Geometric-mean helper that ignores non-finite values (used for the
/// "geomean" bars of the figures).
pub fn geomean(values: &[f64]) -> f64 {
    let finite: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| v.is_finite() && *v > 0.0)
        .collect();
    if finite.is_empty() {
        return f64::NAN;
    }
    atm_metrics::geometric_mean(&finite)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_and_speedup_at_tiny_scale() {
        let ctx = EvalContext::new(Scale::Tiny, 2);
        let baseline = ctx.baseline_seconds(AppId::Blackscholes, 2);
        assert!(baseline > 0.0);
        let atm = ctx.measure(
            AppId::Blackscholes,
            &RunOptions::with_atm(2, AtmConfig::static_atm()),
        );
        assert!((0.0..=100.0).contains(&atm.correctness));
        assert!(atm.reuse_percent > 0.0);
        let speedup = ctx.speedup(AppId::Blackscholes, 2, &atm);
        assert!(speedup.is_finite() && speedup > 0.0);
    }

    #[test]
    fn workload_and_baseline_are_cached() {
        let ctx = EvalContext::new(Scale::Tiny, 1);
        let a = ctx.app(AppId::Swaptions);
        let b = ctx.app(AppId::Swaptions);
        assert!(Arc::ptr_eq(&a, &b), "the generated workload must be cached");
        let t1 = ctx.baseline_seconds(AppId::Swaptions, 1);
        let t2 = ctx.baseline_seconds(AppId::Swaptions, 1);
        assert_eq!(t1, t2, "the baseline timing must be cached");
    }

    #[test]
    fn p_sweep_covers_the_training_ladder_and_oracles_exist() {
        let ctx = EvalContext::new(Scale::Tiny, 1);
        let sweep = ctx.p_sweep(AppId::Blackscholes);
        assert_eq!(sweep.len(), Percentage::STEPS + 1);
        assert!(
            (sweep.last().unwrap().p - 1.0).abs() < 1e-12,
            "the sweep must end at p = 100%"
        );
        // p = 100% is exact, so Oracle(100%) always exists.
        let oracle = ctx.oracle(AppId::Blackscholes);
        assert!(oracle.oracle_100.is_some());
        assert!(oracle.oracle_95.is_some());
        assert!(oracle.oracle_95.as_ref().unwrap().p <= oracle.oracle_100.as_ref().unwrap().p);
    }

    #[test]
    fn geomean_ignores_non_finite_values() {
        assert!((geomean(&[2.0, 8.0, f64::INFINITY]) - 4.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }
}
