//! `atm-eval` — regenerates the tables and figures of the ATM paper, plus
//! the memo-store experiments (cache pressure, warm start).
//!
//! ```text
//! atm-eval <experiment>|all [--scale tiny|small] [--workers N]
//!          [--csv DIR] [--json DIR] [--trace FILE] [--quick] [--list]
//! ```
//!
//! Experiments: table1 table2 table3 sizing figure3 figure4 figure5 figure6
//! figure7 figure8 figure9 pressure warmstart mixed scaling creation serve.
//!
//! `--quick` is the CI smoke mode: tiny scale, two workers. `--json DIR`
//! writes one `BENCH_<experiment>.json` per experiment with the machine-
//! readable metrics (memo-store hits, misses, insertions, evictions,
//! rejected admissions, resident bytes, saved kernel time, task-latency
//! percentiles). `--trace FILE` additionally runs a traced, observed
//! workload after the experiments and writes a Chrome Trace Event Format
//! file that <https://ui.perfetto.dev> loads directly.

use atm_apps::Scale;
use atm_eval::{all_experiments, run_experiment, EvalContext, Experiment};
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    experiments: Vec<Experiment>,
    scale: Scale,
    workers: usize,
    csv_dir: Option<PathBuf>,
    json_dir: Option<PathBuf>,
    trace_path: Option<PathBuf>,
}

fn usage() -> String {
    format!(
        "usage: atm-eval <experiment>|all [--scale tiny|small] [--workers N] [--csv DIR] [--json DIR] [--trace FILE] [--quick]\n       atm-eval --list\n\nexperiments: {}",
        all_experiments().join(" ")
    )
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut experiments = Vec::new();
    let mut scale = Scale::Small;
    let mut workers = 8usize;
    let mut csv_dir = None;
    let mut json_dir = None;
    let mut trace_path = None;
    let mut quick = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                return Err(format!(
                    "available experiments: {}",
                    all_experiments().join(" ")
                ));
            }
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    other => return Err(format!("unknown scale {other:?}\n{}", usage())),
                };
            }
            "--workers" => {
                i += 1;
                workers = args
                    .get(i)
                    .and_then(|w| w.parse().ok())
                    .filter(|&w| w >= 1)
                    .ok_or_else(|| format!("--workers needs a positive integer\n{}", usage()))?;
            }
            "--csv" => {
                i += 1;
                csv_dir =
                    Some(PathBuf::from(args.get(i).ok_or_else(|| {
                        format!("--csv needs a directory\n{}", usage())
                    })?));
            }
            "--json" => {
                i += 1;
                json_dir =
                    Some(PathBuf::from(args.get(i).ok_or_else(|| {
                        format!("--json needs a directory\n{}", usage())
                    })?));
            }
            "--trace" => {
                i += 1;
                trace_path =
                    Some(PathBuf::from(args.get(i).ok_or_else(|| {
                        format!("--trace needs a file path\n{}", usage())
                    })?));
            }
            "--quick" => quick = true,
            "all" => experiments.extend(Experiment::ALL),
            name => {
                let experiment = Experiment::parse(name)
                    .ok_or_else(|| format!("unknown experiment '{name}'\n{}", usage()))?;
                experiments.push(experiment);
            }
        }
        i += 1;
    }
    if experiments.is_empty() {
        return Err(usage());
    }
    if quick {
        // CI smoke mode: smallest problems, modest parallelism.
        scale = Scale::Tiny;
        workers = workers.min(2);
    }
    Ok(Cli {
        experiments,
        scale,
        workers,
        csv_dir,
        json_dir,
        trace_path,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "ATM evaluation harness — scale: {:?}, workers: {}\n",
        cli.scale, cli.workers
    );
    let ctx = EvalContext::new(cli.scale, cli.workers);
    for experiment in &cli.experiments {
        let started = std::time::Instant::now();
        let report = run_experiment(*experiment, &ctx);
        println!("{}", report.render());
        println!("[{} completed in {:.1?}]\n", report.id, started.elapsed());
        if let Some(dir) = &cli.csv_dir {
            match report.write_csv(dir) {
                Ok(path) => println!("  csv written to {}", path.display()),
                Err(err) => eprintln!("  failed to write csv: {err}"),
            }
        }
        if let Some(dir) = &cli.json_dir {
            match report.write_json(dir) {
                Ok(path) => println!("  json written to {}", path.display()),
                Err(err) => eprintln!("  failed to write json: {err}"),
            }
        }
    }
    if let Some(path) = &cli.trace_path {
        match atm_eval::trace_capture::write_chrome_trace(path, cli.workers) {
            Ok(()) => println!(
                "chrome trace written to {} (load it at ui.perfetto.dev)",
                path.display()
            ),
            Err(err) => {
                eprintln!("failed to write trace: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(values: &[&str]) -> Vec<String> {
        values.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_experiments_scale_and_workers() {
        let cli = parse_args(&strings(&[
            "figure3",
            "table1",
            "--scale",
            "tiny",
            "--workers",
            "2",
        ]))
        .unwrap();
        assert_eq!(
            cli.experiments,
            vec![Experiment::Figure3, Experiment::Table1]
        );
        assert_eq!(cli.scale, Scale::Tiny);
        assert_eq!(cli.workers, 2);
        assert!(cli.csv_dir.is_none());
        assert!(cli.json_dir.is_none());
    }

    #[test]
    fn quick_mode_forces_tiny_scale_and_caps_workers() {
        let cli = parse_args(&strings(&["pressure", "warmstart", "--quick"])).unwrap();
        assert_eq!(cli.scale, Scale::Tiny);
        assert_eq!(cli.workers, 2);
        assert_eq!(
            cli.experiments,
            vec![Experiment::Pressure, Experiment::WarmStart]
        );
    }

    #[test]
    fn json_dir_is_parsed() {
        let cli = parse_args(&strings(&["table1", "--json", "out/bench"])).unwrap();
        assert_eq!(cli.json_dir, Some(PathBuf::from("out/bench")));
    }

    #[test]
    fn trace_path_is_parsed() {
        let cli = parse_args(&strings(&[
            "scaling",
            "--quick",
            "--trace",
            "out/trace.json",
        ]))
        .unwrap();
        assert_eq!(cli.trace_path, Some(PathBuf::from("out/trace.json")));
        assert!(parse_args(&strings(&["scaling", "--trace"])).is_err());
    }

    #[test]
    fn all_expands_to_every_experiment() {
        let cli = parse_args(&strings(&["all"])).unwrap();
        assert_eq!(cli.experiments.len(), Experiment::ALL.len());
    }

    #[test]
    fn rejects_unknown_experiment_and_empty_invocation() {
        assert!(parse_args(&strings(&["figure42"])).is_err());
        assert!(parse_args(&[]).is_err());
    }
}
