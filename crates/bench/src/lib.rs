//! Evaluation harness for the ATM reproduction.
//!
//! This crate regenerates every table and figure of the paper's evaluation
//! section (§IV-B, §V, Tables I–III, Figures 3–9) from the Rust
//! implementation. Each experiment is a function returning a [`Report`]
//! (a human-readable text block plus machine-readable CSV rows); the
//! `atm-eval` binary selects experiments from the command line and can dump
//! the CSVs next to the textual output.
//!
//! Absolute numbers are not expected to match the paper (different machine,
//! scaled-down inputs, a from-scratch runtime); the *shape* of each result —
//! which configuration wins, by roughly what factor, where the cliffs are —
//! is what the harness is meant to reproduce. See `EXPERIMENTS.md` at the
//! repository root for a paper-vs-measured discussion.

#![warn(missing_docs)]

pub mod experiments;
pub mod measure;
pub mod microbench;
pub mod report;
pub mod trace_capture;

pub use experiments::{all_experiments, run_experiment, Experiment};
pub use measure::{EvalContext, Measurement, OracleTable, PSweepEntry};
pub use microbench::{bench, BenchResult};
pub use report::Report;
