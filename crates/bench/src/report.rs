//! Textual + CSV + JSON reports produced by every experiment.

use std::fmt::Write as _;
use std::path::Path;

/// The output of one experiment: a title, a free-form text block (what the
/// user sees on stdout), a set of CSV rows (what plotting scripts read) and
/// named scalar metrics (what the `BENCH_<id>.json` machine report tracks —
/// cache behaviour, hit rates and saved time, not just wall-clock).
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment identifier (e.g. `figure3`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The rendered text table(s).
    pub text: String,
    /// CSV header.
    pub csv_header: String,
    /// CSV data rows.
    pub csv_rows: Vec<String>,
    /// Named scalar metrics serialised into the JSON report, in insertion
    /// order (e.g. memo-store hits/misses/evictions/resident bytes).
    pub metrics: Vec<(String, f64)>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        csv_header: impl Into<String>,
    ) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            text: String::new(),
            csv_header: csv_header.into(),
            csv_rows: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Records a named scalar metric for the JSON report.
    pub fn metric(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.push((name.into(), value));
    }

    /// Appends one line to the text block.
    pub fn line(&mut self, line: impl AsRef<str>) {
        self.text.push_str(line.as_ref());
        self.text.push('\n');
    }

    /// Appends a formatted line to the text block.
    pub fn linef(&mut self, args: std::fmt::Arguments<'_>) {
        let _ = writeln!(self.text, "{args}");
    }

    /// Appends one CSV row.
    pub fn row(&mut self, row: impl Into<String>) {
        self.csv_rows.push(row.into());
    }

    /// Renders the full report (title + text) for printing.
    pub fn render(&self) -> String {
        let bar = "=".repeat(self.title.len().max(8));
        format!("{bar}\n{}\n{bar}\n{}", self.title, self.text)
    }

    /// The CSV contents (header + rows).
    pub fn csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.csv_header);
        out.push('\n');
        for row in &self.csv_rows {
            out.push_str(row);
            out.push('\n');
        }
        out
    }

    /// Writes the CSV to `<dir>/<id>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        std::fs::write(&path, self.csv())?;
        Ok(path)
    }

    /// The JSON report: id, title, metrics and the CSV rows, encoded with a
    /// dependency-free serialiser.
    pub fn json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"id\": {},", json_string(&self.id));
        let _ = writeln!(out, "  \"title\": {},", json_string(&self.title));
        out.push_str("  \"metrics\": {");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {}", json_string(name), json_number(*value));
        }
        if !self.metrics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        let _ = writeln!(out, "  \"csv_header\": {},", json_string(&self.csv_header));
        out.push_str("  \"rows\": [");
        for (i, row) in self.csv_rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}", json_string(row));
        }
        if !self.csv_rows.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Writes the JSON report to `<dir>/BENCH_<id>.json`.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.id));
        std::fs::write(&path, self.json())?;
        Ok(path)
    }
}

/// JSON string literal (escapes quotes, backslashes and control bytes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number literal (`null` for non-finite values, which JSON lacks).
fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accumulates_text_and_csv() {
        let mut report = Report::new("figX", "A figure", "a,b");
        report.line("hello");
        report.linef(format_args!("x = {}", 42));
        report.row("1,2");
        report.row("3,4");
        assert!(report.render().contains("A figure"));
        assert!(report.render().contains("x = 42"));
        assert_eq!(report.csv(), "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn json_report_carries_metrics_and_rows() {
        let mut report = Report::new("press", "Cache \"pressure\"", "a,b");
        report.metric("store_hits", 42.0);
        report.metric("saved_ns", 1.5e9);
        report.metric("broken", f64::NAN);
        report.row("1,2");
        let json = report.json();
        assert!(json.contains("\"id\": \"press\""));
        assert!(json.contains("\"Cache \\\"pressure\\\"\""));
        assert!(json.contains("\"store_hits\": 42"));
        assert!(json.contains("\"saved_ns\": 1500000000"));
        assert!(json.contains("\"broken\": null"));
        assert!(json.contains("\"1,2\""));

        let dir = std::env::temp_dir().join("atm-eval-test-json");
        let _ = std::fs::remove_dir_all(&dir);
        let path = report.write_json(&dir).unwrap();
        assert!(path.ends_with("BENCH_press.json"));
        assert_eq!(std::fs::read_to_string(path).unwrap(), json);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn csv_is_written_to_disk() {
        let dir = std::env::temp_dir().join("atm-eval-test-report");
        let _ = std::fs::remove_dir_all(&dir);
        let mut report = Report::new("t1", "T", "h");
        report.row("v");
        let path = report.write_csv(&dir).unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), "h\nv\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
