//! Textual + CSV report produced by every experiment.

use std::fmt::Write as _;
use std::path::Path;

/// The output of one experiment: a title, a free-form text block (what the
/// user sees on stdout) and a set of CSV rows (what plotting scripts read).
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment identifier (e.g. `figure3`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The rendered text table(s).
    pub text: String,
    /// CSV header.
    pub csv_header: String,
    /// CSV data rows.
    pub csv_rows: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        csv_header: impl Into<String>,
    ) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            text: String::new(),
            csv_header: csv_header.into(),
            csv_rows: Vec::new(),
        }
    }

    /// Appends one line to the text block.
    pub fn line(&mut self, line: impl AsRef<str>) {
        self.text.push_str(line.as_ref());
        self.text.push('\n');
    }

    /// Appends a formatted line to the text block.
    pub fn linef(&mut self, args: std::fmt::Arguments<'_>) {
        let _ = writeln!(self.text, "{args}");
    }

    /// Appends one CSV row.
    pub fn row(&mut self, row: impl Into<String>) {
        self.csv_rows.push(row.into());
    }

    /// Renders the full report (title + text) for printing.
    pub fn render(&self) -> String {
        let bar = "=".repeat(self.title.len().max(8));
        format!("{bar}\n{}\n{bar}\n{}", self.title, self.text)
    }

    /// The CSV contents (header + rows).
    pub fn csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.csv_header);
        out.push('\n');
        for row in &self.csv_rows {
            out.push_str(row);
            out.push('\n');
        }
        out
    }

    /// Writes the CSV to `<dir>/<id>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        std::fs::write(&path, self.csv())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accumulates_text_and_csv() {
        let mut report = Report::new("figX", "A figure", "a,b");
        report.line("hello");
        report.linef(format_args!("x = {}", 42));
        report.row("1,2");
        report.row("3,4");
        assert!(report.render().contains("A figure"));
        assert!(report.render().contains("x = 42"));
        assert_eq!(report.csv(), "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn csv_is_written_to_disk() {
        let dir = std::env::temp_dir().join("atm-eval-test-report");
        let _ = std::fs::remove_dir_all(&dir);
        let mut report = Report::new("t1", "T", "h");
        report.row("v");
        let path = report.write_csv(&dir).unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), "h\nv\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
