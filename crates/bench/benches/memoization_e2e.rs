//! End-to-end memoization benchmark: the same (tiny) application run with
//! the baseline runtime, Static ATM and Dynamic ATM. The relative ordering
//! of these three bars is the headline result of the paper (Figure 3) in
//! miniature.

use atm_apps::blackscholes::{Blackscholes, BlackscholesConfig};
use atm_apps::{BenchmarkApp, RunOptions, Scale};
use atm_core::AtmConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn blackscholes_end_to_end(c: &mut Criterion) {
    let app = Blackscholes::new(BlackscholesConfig::for_scale(Scale::Tiny));
    let mut group = c.benchmark_group("blackscholes_e2e");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    group.bench_function("baseline", |b| b.iter(|| app.run_tasked(&RunOptions::baseline(2))));
    group.bench_function("static_atm", |b| {
        b.iter(|| app.run_tasked(&RunOptions::with_atm(2, AtmConfig::static_atm())))
    });
    group.bench_function("dynamic_atm", |b| {
        b.iter(|| app.run_tasked(&RunOptions::with_atm(2, AtmConfig::dynamic_atm())))
    });
    group.finish();
}

criterion_group!(benches, blackscholes_end_to_end);
criterion_main!(benches);
