//! End-to-end memoization benchmark: the same (tiny) application run with
//! the baseline runtime, Static ATM and Dynamic ATM. The relative ordering
//! of these three bars is the headline result of the paper (Figure 3) in
//! miniature.
//!
//! Run with: `cargo bench --bench memoization_e2e`

use atm_apps::blackscholes::{Blackscholes, BlackscholesConfig};
use atm_apps::{BenchmarkApp, RunOptions, Scale};
use atm_core::AtmConfig;
use atm_eval::bench;

fn main() {
    let app = Blackscholes::new(BlackscholesConfig::for_scale(Scale::Tiny));
    bench("blackscholes_e2e", "baseline", || {
        let _ = app.run_tasked(&RunOptions::baseline(2));
    });
    bench("blackscholes_e2e", "static_atm", || {
        let _ = app.run_tasked(&RunOptions::with_atm(2, AtmConfig::static_atm()));
    });
    bench("blackscholes_e2e", "dynamic_atm", || {
        let _ = app.run_tasked(&RunOptions::with_atm(2, AtmConfig::dynamic_atm()));
    });
}
