//! Task History Table and In-flight Key Table operation costs: lookup hits,
//! lookup misses, inserts with FIFO eviction, IKT producer/waiter traffic.

use atm_core::{EntryKey, InFlightKeyTable, OutputSnapshot, TaskHistoryTable, ThtConfig, Waiter};
use atm_runtime::{Access, DataStore, ElemType, RegionData, TaskId, TaskTypeId};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn snapshot(store: &DataStore, len: usize, tag: &str) -> Arc<Vec<OutputSnapshot>> {
    let region = store.register(tag, RegionData::F32(vec![1.0; len]));
    Arc::new(vec![OutputSnapshot::capture(store, &Access::output(region, ElemType::F32))])
}

fn key(hash: u64) -> EntryKey {
    EntryKey::new(TaskTypeId::from_raw(0), hash, 1.0)
}

fn tht_operations(c: &mut Criterion) {
    let store = DataStore::new();
    let outputs = snapshot(&store, 1024, "out");

    let mut group = c.benchmark_group("tht");
    group.measurement_time(Duration::from_millis(600)).warm_up_time(Duration::from_millis(200)).sample_size(10);

    // Pre-populated table for hit/miss lookups.
    let tht = TaskHistoryTable::new(ThtConfig { bucket_bits: 8, ways: 128 });
    for i in 0..4096u64 {
        tht.insert(key(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)), TaskId::from_raw(i), Arc::clone(&outputs));
    }
    let hit_key = key(5u64.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    group.bench_function("lookup_hit", |b| b.iter(|| tht.lookup(&hit_key)));
    let miss_key = key(0xDEAD_BEEF_0000_0001);
    group.bench_function("lookup_miss", |b| b.iter(|| tht.lookup(&miss_key)));

    group.bench_function("insert_with_fifo_eviction", |b| {
        let tht = TaskHistoryTable::new(ThtConfig { bucket_bits: 4, ways: 16 });
        let mut i = 0u64;
        b.iter(|| {
            tht.insert(key(i), TaskId::from_raw(i), Arc::clone(&outputs));
            i = i.wrapping_add(1);
        })
    });
    group.finish();

    let mut group = c.benchmark_group("ikt");
    group.measurement_time(Duration::from_millis(600)).warm_up_time(Duration::from_millis(200)).sample_size(10);
    group.bench_function("register_then_retire", |b| {
        let ikt = InFlightKeyTable::new();
        let mut i = 0u64;
        b.iter(|| {
            let k = key(i);
            ikt.register_producer(k, TaskId::from_raw(i));
            ikt.register_waiter(&k, Waiter { task: TaskId::from_raw(i + 1), accesses: vec![] });
            let waiters = ikt.retire(&k, TaskId::from_raw(i));
            i = i.wrapping_add(2);
            waiters
        })
    });
    group.finish();
}

criterion_group!(benches, tht_operations);
criterion_main!(benches);
