//! Task History Table and In-flight Key Table operation costs: lookup hits,
//! lookup misses, inserts with FIFO eviction, IKT producer/waiter traffic.
//!
//! Run with: `cargo bench --bench tht_ops`

use atm_core::{EntryKey, InFlightKeyTable, OutputSnapshot, TaskHistoryTable, ThtConfig, Waiter};
use atm_eval::bench;
use atm_runtime::{Access, DataStore, TaskId, TaskTypeId};
use std::sync::Arc;

fn snapshot(store: &DataStore, len: usize, tag: &str) -> Arc<Vec<OutputSnapshot>> {
    let region = store.register_typed(tag, vec![1.0f32; len]).unwrap();
    Arc::new(vec![OutputSnapshot::capture(
        store,
        &Access::write(&region),
    )])
}

fn key(hash: u64) -> EntryKey {
    EntryKey::new(TaskTypeId::from_raw(0), hash, 1.0)
}

fn tht_operations() {
    let store = DataStore::new();
    let outputs = snapshot(&store, 1024, "out");

    // Pre-populated table for hit/miss lookups.
    let tht = TaskHistoryTable::new(ThtConfig {
        bucket_bits: 8,
        ways: 128,
    });
    for i in 0..4096u64 {
        tht.insert(
            key(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            TaskId::from_raw(i),
            Arc::clone(&outputs),
        );
    }
    let hit_key = key(5u64.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    bench("tht", "lookup_hit", || {
        let _ = tht.lookup(&hit_key);
    });
    let miss_key = key(0xDEAD_BEEF_0000_0001);
    bench("tht", "lookup_miss", || {
        let _ = tht.lookup(&miss_key);
    });

    let evicting = TaskHistoryTable::new(ThtConfig {
        bucket_bits: 4,
        ways: 16,
    });
    let mut i = 0u64;
    bench("tht", "insert_with_fifo_eviction", || {
        evicting.insert(key(i), TaskId::from_raw(i), Arc::clone(&outputs));
        i = i.wrapping_add(1);
    });

    let ikt = InFlightKeyTable::new();
    let mut j = 0u64;
    bench("ikt", "register_then_retire", || {
        let k = key(j);
        ikt.register_producer(k, TaskId::from_raw(j));
        ikt.register_waiter(
            &k,
            Waiter {
                task: TaskId::from_raw(j + 1),
                accesses: vec![],
            },
        );
        let _ = ikt.retire(&k, TaskId::from_raw(j));
        j = j.wrapping_add(2);
    });
}

fn main() {
    tht_operations();
}
