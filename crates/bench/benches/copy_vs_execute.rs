//! Copying memoized outputs vs executing the task kernel.
//!
//! §III-A of the paper reports that copying the outputs of a memoized task
//! from/to the THT is roughly an order of magnitude faster than executing
//! the task (10.75× / 10.31× on their machine). This bench reproduces the
//! *measurement* for two representative kernels: a Blackscholes block and a
//! Jacobi stencil block.
//!
//! Run with: `cargo bench --bench copy_vs_execute`

use atm_apps::blackscholes::{price_block, FIELDS};
use atm_apps::stencil::jacobi_block;
use atm_core::OutputSnapshot;
use atm_eval::bench;
use atm_runtime::{Access, DataStore};

fn blackscholes_block() {
    let block = 4096usize;
    let options: Vec<f32> = (0..block)
        .flat_map(|i| {
            let base = 50.0 + (i % 100) as f32;
            [
                base,
                base * 0.95,
                0.05,
                0.2,
                1.0 + (i % 5) as f32,
                (i % 2) as f32,
            ]
        })
        .collect();
    let mut prices = vec![0.0f32; block];
    assert_eq!(options.len(), block * FIELDS);

    let store = DataStore::new();
    let out_region = store.register_typed("prices", vec![1.0f32; block]).unwrap();
    let snapshot = OutputSnapshot::capture(&store, &Access::write(&out_region));
    let dst_region = store.register_zeros::<f32>("dst", block).unwrap();
    let dst_access = Access::write(&dst_region);

    let execute = bench("copy_vs_execute_blackscholes", "execute_block", || {
        price_block(&options, &mut prices)
    });
    let copy = bench(
        "copy_vs_execute_blackscholes",
        "copy_outputs_from_tht",
        || snapshot.apply_to(&store, &dst_access),
    );
    println!(
        "copy_vs_execute_blackscholes: copy is {:.2}x faster than execute\n",
        execute.median_ns / copy.median_ns
    );
}

fn jacobi_stencil_block() {
    let bs = 96usize;
    let center = vec![0.3f32; bs * bs];
    let halo = vec![1.0f32; bs];

    let store = DataStore::new();
    let out_region = store
        .register_typed("block", vec![0.5f32; bs * bs])
        .unwrap();
    let snapshot = OutputSnapshot::capture(&store, &Access::write(&out_region));
    let dst_region = store.register_zeros::<f32>("dst", bs * bs).unwrap();
    let dst_access = Access::write(&dst_region);

    let execute = bench("copy_vs_execute_stencil", "execute_block", || {
        let _ = jacobi_block(&center, &halo, &halo, &halo, &halo, bs);
    });
    let copy = bench("copy_vs_execute_stencil", "copy_outputs_from_tht", || {
        snapshot.apply_to(&store, &dst_access)
    });
    println!(
        "copy_vs_execute_stencil: copy is {:.2}x faster than execute\n",
        execute.median_ns / copy.median_ns
    );
}

fn main() {
    blackscholes_block();
    jacobi_stencil_block();
}
