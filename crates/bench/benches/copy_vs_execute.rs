//! Copying memoized outputs vs executing the task kernel.
//!
//! §III-A of the paper reports that copying the outputs of a memoized task
//! from/to the THT is roughly an order of magnitude faster than executing
//! the task (10.75× / 10.31× on their machine). This bench reproduces the
//! *measurement* for two representative kernels: a Blackscholes block and a
//! Jacobi stencil block.

use atm_apps::blackscholes::{price_block, FIELDS};
use atm_apps::stencil::jacobi_block;
use atm_core::OutputSnapshot;
use atm_runtime::{Access, DataStore, ElemType, RegionData};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn blackscholes_block(c: &mut Criterion) {
    let block = 4096usize;
    let options: Vec<f32> = (0..block)
        .flat_map(|i| {
            let base = 50.0 + (i % 100) as f32;
            [base, base * 0.95, 0.05, 0.2, 1.0 + (i % 5) as f32, (i % 2) as f32]
        })
        .collect();
    let mut prices = vec![0.0f32; block];

    let store = DataStore::new();
    let out_region = store.register("prices", RegionData::F32(vec![1.0; block]));
    let snapshot = OutputSnapshot::capture(&store, &Access::output(out_region, ElemType::F32));
    let dst_region = store.register("dst", RegionData::F32(vec![0.0; block]));
    let dst_access = Access::output(dst_region, ElemType::F32);

    let mut group = c.benchmark_group("copy_vs_execute_blackscholes");
    group.measurement_time(Duration::from_millis(800)).warm_up_time(Duration::from_millis(200)).sample_size(10);
    group.bench_function("execute_block", |b| b.iter(|| price_block(&options, &mut prices)));
    group.bench_function("copy_outputs_from_tht", |b| b.iter(|| snapshot.apply_to(&store, &dst_access)));
    group.finish();
    assert_eq!(options.len(), block * FIELDS);
}

fn jacobi_stencil_block(c: &mut Criterion) {
    let bs = 96usize;
    let center = vec![0.3f32; bs * bs];
    let halo = vec![1.0f32; bs];

    let store = DataStore::new();
    let out_region = store.register("block", RegionData::F32(vec![0.5; bs * bs]));
    let snapshot = OutputSnapshot::capture(&store, &Access::output(out_region, ElemType::F32));
    let dst_region = store.register("dst", RegionData::F32(vec![0.0; bs * bs]));
    let dst_access = Access::output(dst_region, ElemType::F32);

    let mut group = c.benchmark_group("copy_vs_execute_stencil");
    group.measurement_time(Duration::from_millis(800)).warm_up_time(Duration::from_millis(200)).sample_size(10);
    group.bench_function("execute_block", |b| b.iter(|| jacobi_block(&center, &halo, &halo, &halo, &halo, bs)));
    group.bench_function("copy_outputs_from_tht", |b| b.iter(|| snapshot.apply_to(&store, &dst_access)));
    group.finish();
}

criterion_group!(benches, blackscholes_block, jacobi_stencil_block);
criterion_main!(benches);
