//! Hash-key generation cost as a function of the selection percentage `p`
//! and of the task-input size (§III-B: the hashing overhead is what Dynamic
//! ATM reduces by selecting a small `p`).
//!
//! Run with: `cargo bench --bench hash_keygen`

use atm_core::{KeyGenerator, Percentage};
use atm_eval::bench;
use atm_runtime::{Access, DataStore};

fn keygen_vs_percentage() {
    let store = DataStore::new();
    // 1 MiB of f32 input, comparable to a mid-sized stencil block.
    let elems = 256 * 1024;
    let region = store
        .register_typed("input", (0..elems).map(|i| i as f32).collect::<Vec<f32>>())
        .unwrap();
    let accesses = vec![Access::read(&region)];
    let keygen = KeyGenerator::new(7, true);

    for (label, p) in [
        ("p=2^-15", Percentage::MIN),
        ("p=0.1%", Percentage::from_fraction(0.001)),
        ("p=1%", Percentage::from_fraction(0.01)),
        ("p=25%", Percentage::from_fraction(0.25)),
        ("p=100%", Percentage::FULL),
    ] {
        let result = bench("hash_keygen_vs_p", label, || {
            let _ = keygen.compute_uniform(&store, &accesses, p);
        });
        println!(
            "  -> {:.1} MiB/s over the selected bytes",
            result.mib_per_second(p.bytes_of(elems * 4))
        );
    }
}

fn keygen_vs_input_size() {
    let store = DataStore::new();
    let keygen = KeyGenerator::new(9, true);
    for kib in [4usize, 64, 1024] {
        let elems = kib * 1024 / 4;
        let region = store
            .register_typed(
                format!("in_{kib}k"),
                (0..elems).map(|i| i as f32).collect::<Vec<f32>>(),
            )
            .unwrap();
        let accesses = vec![Access::read(&region)];
        let result = bench(
            "hash_keygen_vs_input_size",
            &format!("full_p/{kib}KiB"),
            || {
                let _ = keygen.compute_uniform(&store, &accesses, Percentage::FULL);
            },
        );
        println!("  -> {:.1} MiB/s", result.mib_per_second(elems * 4));
    }
}

fn main() {
    keygen_vs_percentage();
    keygen_vs_input_size();
}
