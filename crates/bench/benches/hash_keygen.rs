//! Hash-key generation cost as a function of the selection percentage `p`
//! and of the task-input size (§III-B: the hashing overhead is what Dynamic
//! ATM reduces by selecting a small `p`).

use atm_core::{KeyGenerator, Percentage};
use atm_runtime::{Access, DataStore, ElemType, RegionData};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn keygen_vs_percentage(c: &mut Criterion) {
    let store = DataStore::new();
    // 1 MiB of f32 input, comparable to a mid-sized stencil block.
    let elems = 256 * 1024;
    let region = store.register("input", RegionData::F32((0..elems).map(|i| i as f32).collect()));
    let accesses = vec![Access::input(region, ElemType::F32)];
    let keygen = KeyGenerator::new(7, true);

    let mut group = c.benchmark_group("hash_keygen_vs_p");
    group.measurement_time(Duration::from_millis(600)).warm_up_time(Duration::from_millis(200)).sample_size(10);
    for (label, p) in [
        ("p=2^-15", Percentage::MIN),
        ("p=0.1%", Percentage::from_fraction(0.001)),
        ("p=1%", Percentage::from_fraction(0.01)),
        ("p=25%", Percentage::from_fraction(0.25)),
        ("p=100%", Percentage::FULL),
    ] {
        group.throughput(Throughput::Bytes(p.bytes_of(elems * 4) as u64));
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| keygen.compute(&store, &accesses, p))
        });
    }
    group.finish();
}

fn keygen_vs_input_size(c: &mut Criterion) {
    let store = DataStore::new();
    let keygen = KeyGenerator::new(9, true);
    let mut group = c.benchmark_group("hash_keygen_vs_input_size");
    group.measurement_time(Duration::from_millis(600)).warm_up_time(Duration::from_millis(200)).sample_size(10);
    for kib in [4usize, 64, 1024] {
        let elems = kib * 1024 / 4;
        let region =
            store.register(format!("in_{kib}k"), RegionData::F32((0..elems).map(|i| i as f32).collect()));
        let accesses = vec![Access::input(region, ElemType::F32)];
        group.throughput(Throughput::Bytes((elems * 4) as u64));
        group.bench_function(BenchmarkId::new("full_p", format!("{kib}KiB")), |b| {
            b.iter(|| keygen.compute(&store, &accesses, Percentage::FULL))
        });
    }
    group.finish();
}

criterion_group!(benches, keygen_vs_percentage, keygen_vs_input_size);
criterion_main!(benches);
