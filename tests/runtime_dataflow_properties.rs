//! Property-based tests of the runtime + ATM stack on randomly generated
//! task graphs.
//!
//! The generator builds arbitrary little dataflow programs: a set of `f64`
//! regions and a stream of tasks, each reading a random subset of regions
//! and writing another. The kernel is a fixed deterministic function of the
//! inputs, so the whole program has a unique dataflow semantics. Cases are
//! generated from the suite's own deterministic PRNG, so every failure is
//! reproducible from the case index. The properties:
//!
//! * executing the stream on the parallel runtime gives exactly the same
//!   final memory state as executing it sequentially in submission order;
//! * enabling Static ATM never changes that state (the paper's exactness
//!   guarantee), no matter how tasks alias regions;
//! * the runtime's bookkeeping adds up (executed + bypassed + deferred =
//!   submitted).

use atm_core::{AtmConfig, AtmEngine};
use atm_hash::Xoshiro256StarStar;
use atm_runtime::{Region, RuntimeBuilder, TaskContext, TaskTypeBuilder};
use std::sync::Arc;

const CASES: usize = 24;

/// One randomly generated task: which regions it reads and writes.
#[derive(Debug, Clone)]
struct GenTask {
    reads: Vec<usize>,
    writes: Vec<usize>,
}

/// A randomly generated dataflow program.
#[derive(Debug, Clone)]
struct GenProgram {
    regions: usize,
    region_len: usize,
    tasks: Vec<GenTask>,
}

fn gen_program(rng: &mut Xoshiro256StarStar) -> GenProgram {
    let regions = 2 + rng.below(6);
    let region_len = 2 + rng.below(14);
    let task_count = 1 + rng.below(39);
    let tasks = (0..task_count)
        .map(|_| {
            let reads = (0..1 + rng.below(2)).map(|_| rng.below(regions)).collect();
            let writes = (0..1 + rng.below(2)).map(|_| rng.below(regions)).collect();
            GenTask { reads, writes }
        })
        .collect();
    GenProgram {
        regions,
        region_len,
        tasks,
    }
}

/// The task kernel: every output element becomes a fixed mix of the inputs.
/// Deterministic, order-sensitive in its inputs, cheap.
fn kernel_combine(inputs: &[Vec<f64>], region_len: usize) -> Vec<f64> {
    let mut out = vec![1.0; region_len];
    for (which, input) in inputs.iter().enumerate() {
        for (o, &x) in out.iter_mut().zip(input) {
            *o = (*o * 0.5 + x * (which as f64 + 1.0) * 0.25).sin() + 1.0;
        }
    }
    out
}

/// Sequential semantics: apply the tasks in submission order.
fn run_sequential(program: &GenProgram) -> Vec<Vec<f64>> {
    let mut memory: Vec<Vec<f64>> = (0..program.regions)
        .map(|r| vec![r as f64 * 0.1; program.region_len])
        .collect();
    for task in &program.tasks {
        let inputs: Vec<Vec<f64>> = task.reads.iter().map(|&r| memory[r].clone()).collect();
        let output = kernel_combine(&inputs, program.region_len);
        for &w in &task.writes {
            memory[w] = output.clone();
        }
    }
    memory
}

/// Parallel semantics: run the same stream through the runtime.
fn run_parallel(
    program: &GenProgram,
    workers: usize,
    atm: Option<AtmConfig>,
) -> (Vec<Vec<f64>>, u64, u64) {
    let engine = atm.map(AtmEngine::shared);
    let mut builder = RuntimeBuilder::new().workers(workers);
    if let Some(engine) = &engine {
        builder = builder.interceptor(Arc::clone(engine) as Arc<dyn atm_runtime::TaskInterceptor>);
    }
    let rt = builder.build();
    let regions: Vec<Region<f64>> = (0..program.regions)
        .map(|r| {
            rt.store()
                .register_typed(format!("r{r}"), vec![r as f64 * 0.1; program.region_len])
                .expect("unique name")
        })
        .collect();

    let region_len = program.region_len;
    let task_type = rt.register_task_type(
        TaskTypeBuilder::new("combine", move |ctx: &TaskContext<'_>| {
            let read_count = ctx.accesses().iter().filter(|a| a.mode.is_read()).count();
            let inputs: Vec<Vec<f64>> = (0..read_count).map(|i| ctx.arg::<f64>(i)).collect();
            let output = kernel_combine(&inputs, region_len);
            for i in read_count..ctx.accesses().len() {
                ctx.out(i, &output);
            }
        })
        // Any number of f64 accesses in any direction: the generated task
        // shapes are unconstrained apart from the element type.
        .variadic::<f64>(1)
        .memoizable()
        .build(),
    );

    for task in &program.tasks {
        // Reads first, then writes, matching the kernel's access indexing.
        // A region that is both read and written is declared as a read and
        // a separate write access (the dependence tracker handles aliases).
        let mut submission = rt.task(task_type);
        for &r in &task.reads {
            submission = submission.reads(&regions[r]);
        }
        for &w in &task.writes {
            submission = submission.writes(&regions[w]);
        }
        submission
            .submit()
            .expect("generated tasks always fit the variadic signature");
    }
    rt.taskwait();

    let memory: Vec<Vec<f64>> = regions
        .iter()
        .map(|&r| rt.store().read(r).lock().as_f64().to_vec())
        .collect();
    let stats = rt.stats();
    rt.shutdown();
    (memory, stats.submitted, stats.executed)
}

/// The parallel runtime computes exactly the sequential dataflow result.
#[test]
fn parallel_execution_matches_sequential_semantics() {
    let mut rng = Xoshiro256StarStar::new(0xDA7AF10);
    for case in 0..CASES {
        let program = gen_program(&mut rng);
        let workers = 1 + rng.below(4);
        let expected = run_sequential(&program);
        let (actual, submitted, executed) = run_parallel(&program, workers, None);
        assert_eq!(submitted, program.tasks.len() as u64, "case {case}");
        assert_eq!(
            executed, submitted,
            "case {case}: without ATM every task executes"
        );
        assert_eq!(actual, expected, "case {case}");
    }
}

/// Static ATM never changes the program result, for any task graph and
/// any worker count — the exactness guarantee behind Figure 4.
#[test]
fn static_atm_preserves_dataflow_semantics() {
    let mut rng = Xoshiro256StarStar::new(0x57A71C);
    for case in 0..CASES {
        let program = gen_program(&mut rng);
        let workers = 1 + rng.below(4);
        let expected = run_sequential(&program);
        let (actual, submitted, executed) =
            run_parallel(&program, workers, Some(AtmConfig::static_atm()));
        assert_eq!(actual, expected, "case {case}");
        assert!(
            executed <= submitted,
            "case {case}: memoized tasks must not execute"
        );
    }
}

/// Static ATM with the IKT disabled is still exact.
#[test]
fn tht_only_static_atm_is_exact() {
    let mut rng = Xoshiro256StarStar::new(0x7117);
    for case in 0..CASES {
        let program = gen_program(&mut rng);
        let expected = run_sequential(&program);
        let (actual, _, _) = run_parallel(&program, 3, Some(AtmConfig::static_atm().without_ikt()));
        assert_eq!(actual, expected, "case {case}");
    }
}

#[test]
fn duplicate_heavy_program_is_mostly_memoized() {
    // A hand-built program where the same read set is used over and over
    // with disjoint outputs: everything after the first task can be reused.
    let program = GenProgram {
        regions: 6,
        region_len: 32,
        tasks: (0..20)
            .map(|i| GenTask {
                reads: vec![0, 1],
                writes: vec![2 + (i % 4)],
            })
            .collect(),
    };
    let expected = run_sequential(&program);
    let (actual, submitted, executed) = run_parallel(&program, 4, Some(AtmConfig::static_atm()));
    assert_eq!(actual, expected);
    assert_eq!(submitted, 20);
    assert!(
        executed <= 8,
        "at most one execution per distinct (inputs, outputs) shape is needed, got {executed}"
    );
}
