//! Randomized-DAG stress tests of the scheduler core.
//!
//! The generator builds arbitrary dataflow programs exercising every edge
//! shape the dependence tracker knows: fan-out (many readers of one
//! region), fan-in (one task reading many regions), and serialising `inout`
//! chains. Each program runs under 1, 2 and 8 workers in **both queue
//! modes** ([`QueueMode::Fifo`] and [`QueueMode::Stealing`]), split into
//! several taskwait waves, and must:
//!
//! * produce exactly the sequential dataflow result (dataflow order);
//! * leave the runtime quiescent at every taskwait (empty ready queue);
//! * account for every task exactly once (exact completion counts);
//! * retire every finished node (zero resident nodes at every taskwait).
//!
//! Programs run through both submission paths — the singleton
//! `task(..).submit()` builder and the batched `batch()…submit_all()`
//! builder — which must be sequential-equivalent (and bit-identical to each
//! other on a 1-worker FIFO runtime). A dedicated long-running stress
//! (≥ 50k tasks in waves) asserts that graph-node retirement keeps the
//! resident node count bounded by the in-flight wave, independent of the
//! total task count.
//!
//! Cases come from the repo's own deterministic PRNG, so every failure is
//! reproducible from the case index.

use atm_hash::Xoshiro256StarStar;
use atm_runtime::{QueueMode, Region, RuntimeBuilder, TaskContext, TaskTypeBuilder};

const CASES: usize = 5;
const WAVES: usize = 3;

/// One generated task: regions it reads, writes, and accesses as inout.
#[derive(Debug, Clone)]
struct GenTask {
    reads: Vec<usize>,
    writes: Vec<usize>,
    inouts: Vec<usize>,
}

/// A generated dataflow program, split into taskwait waves.
#[derive(Debug, Clone)]
struct GenProgram {
    regions: usize,
    region_len: usize,
    waves: Vec<Vec<GenTask>>,
}

fn gen_program(rng: &mut Xoshiro256StarStar) -> GenProgram {
    let regions = 3 + rng.below(5);
    let region_len = 2 + rng.below(6);
    let waves = (0..WAVES)
        .map(|_| {
            let task_count = 5 + rng.below(30);
            (0..task_count)
                .map(|_| {
                    // Shape mix: plain read/write tasks, wide fan-in
                    // readers, and inout chain links that serialise.
                    let style = rng.below(3);
                    match style {
                        0 => GenTask {
                            reads: (0..1 + rng.below(2)).map(|_| rng.below(regions)).collect(),
                            writes: vec![rng.below(regions)],
                            inouts: vec![],
                        },
                        1 => GenTask {
                            reads: (0..2 + rng.below(3)).map(|_| rng.below(regions)).collect(),
                            writes: (0..1 + rng.below(2)).map(|_| rng.below(regions)).collect(),
                            inouts: vec![],
                        },
                        _ => GenTask {
                            reads: (0..rng.below(2)).map(|_| rng.below(regions)).collect(),
                            writes: vec![],
                            inouts: vec![rng.below(regions)],
                        },
                    }
                })
                .collect()
        })
        .collect();
    GenProgram {
        regions,
        region_len,
        waves,
    }
}

/// The deterministic kernel: every output element is a fixed mix of the
/// inputs (reads first, then inout old values), order-sensitive.
fn kernel_combine(inputs: &[Vec<f64>], region_len: usize) -> Vec<f64> {
    let mut out = vec![1.0; region_len];
    for (which, input) in inputs.iter().enumerate() {
        for (o, &x) in out.iter_mut().zip(input) {
            *o = (*o * 0.5 + x * (which as f64 + 1.0) * 0.25).sin() + 1.0;
        }
    }
    out
}

/// Sequential semantics: apply the tasks in submission order.
fn run_sequential(program: &GenProgram) -> Vec<Vec<f64>> {
    let mut memory: Vec<Vec<f64>> = (0..program.regions)
        .map(|r| vec![r as f64 * 0.1; program.region_len])
        .collect();
    for wave in &program.waves {
        for task in wave {
            let inputs: Vec<Vec<f64>> = task
                .reads
                .iter()
                .chain(&task.inouts)
                .map(|&r| memory[r].clone())
                .collect();
            let output = kernel_combine(&inputs, program.region_len);
            for &w in task.writes.iter().chain(&task.inouts) {
                memory[w] = output.clone();
            }
        }
    }
    memory
}

/// How a run hands its tasks to the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Submission {
    /// `rt.task(..).submit()` per task.
    Singleton,
    /// `rt.batch()` staging one wave, `submit_all()` once per wave.
    Batched,
}

/// Runs the same program through the runtime under one configuration.
fn run_parallel_with(
    program: &GenProgram,
    workers: usize,
    mode: QueueMode,
    submission: Submission,
) -> Vec<Vec<f64>> {
    let rt = RuntimeBuilder::new()
        .workers(workers)
        .queue_mode(mode)
        .build();
    let regions: Vec<Region<f64>> = (0..program.regions)
        .map(|r| {
            rt.store()
                .register_typed(format!("r{r}"), vec![r as f64 * 0.1; program.region_len])
                .expect("unique name")
        })
        .collect();

    let region_len = program.region_len;
    // The kernel reads every read-mode access (reads first, then inouts,
    // matching the submission order below) and writes every write-mode one.
    let task_type = rt.register_task_type(
        TaskTypeBuilder::new("combine", move |ctx: &TaskContext<'_>| {
            let inputs: Vec<Vec<f64>> = ctx
                .accesses()
                .iter()
                .enumerate()
                .filter(|(_, a)| a.mode.is_read())
                .map(|(i, _)| ctx.arg::<f64>(i))
                .collect();
            let output = kernel_combine(&inputs, region_len);
            for (i, access) in ctx.accesses().iter().enumerate() {
                if access.mode.is_write() {
                    ctx.out(i, &output);
                }
            }
        })
        .variadic::<f64>(1)
        .build(),
    );

    let mut submitted_total = 0u64;
    for wave in &program.waves {
        match submission {
            Submission::Singleton => {
                for task in wave {
                    // Reads first, then inouts (read+write), then plain
                    // writes — is_read order in the access list matches the
                    // kernel's input collection order and the sequential
                    // semantics.
                    let mut builder = rt.task(task_type);
                    for &r in &task.reads {
                        builder = builder.reads(&regions[r]);
                    }
                    for &io in &task.inouts {
                        builder = builder.reads_writes(&regions[io]);
                    }
                    for &w in &task.writes {
                        builder = builder.writes(&regions[w]);
                    }
                    builder.submit().expect("generated tasks fit the signature");
                    submitted_total += 1;
                }
            }
            Submission::Batched => {
                // The whole wave staged in submission order, one
                // validation + dependence pass.
                let mut batch = rt.batch();
                for task in wave {
                    batch = batch.task(task_type);
                    for &r in &task.reads {
                        batch = batch.reads(&regions[r]);
                    }
                    for &io in &task.inouts {
                        batch = batch.reads_writes(&regions[io]);
                    }
                    for &w in &task.writes {
                        batch = batch.writes(&regions[w]);
                    }
                    submitted_total += 1;
                }
                batch
                    .submit_all()
                    .expect("generated tasks fit the signature");
            }
        }
        rt.taskwait();
        // Taskwait quiescence: nothing ready, nothing running, and every
        // task submitted so far completed exactly once.
        assert_eq!(rt.ready_depth(), 0, "ready queue must drain at taskwait");
        let stats = rt.stats();
        assert_eq!(stats.submitted, submitted_total);
        assert_eq!(
            stats.executed, submitted_total,
            "without ATM every submitted task executes exactly once"
        );
        assert_eq!(stats.bypassed, 0);
        assert_eq!(stats.deferred, 0);
        // Node retirement: a drained wave leaves no resident graph nodes.
        assert_eq!(stats.live_nodes, 0, "all finished nodes must retire");
        assert_eq!(stats.retired_nodes, submitted_total);
    }

    let memory: Vec<Vec<f64>> = regions
        .iter()
        .map(|&r| rt.store().read(r).lock().as_f64().to_vec())
        .collect();
    rt.shutdown();
    memory
}

/// Every (workers × queue mode) configuration computes exactly the
/// sequential dataflow result on randomized graphs with fan-in, fan-out
/// and inout chains, with exact completion counts and quiescent taskwaits.
#[test]
fn randomized_dags_run_identically_under_all_scheduler_configurations() {
    let mut rng = Xoshiro256StarStar::new(0x5CED_DA65);
    for case in 0..CASES {
        let program = gen_program(&mut rng);
        let expected = run_sequential(&program);
        for workers in [1usize, 2, 8] {
            for mode in [QueueMode::Fifo, QueueMode::Stealing] {
                let actual = run_parallel_with(&program, workers, mode, Submission::Singleton);
                assert_eq!(
                    actual, expected,
                    "case {case}: {workers} workers / {mode:?} diverged from the sequential semantics"
                );
            }
        }
    }
}

/// Batched submission is sequential-equivalent too: staging each wave
/// through `rt.batch()` computes exactly the same dataflow result as the
/// singleton submissions, on the same randomized programs, under every
/// scheduler configuration.
#[test]
fn randomized_dags_run_identically_when_submitted_in_batches() {
    let mut rng = Xoshiro256StarStar::new(0x0B47_C4ED);
    for case in 0..CASES {
        let program = gen_program(&mut rng);
        let expected = run_sequential(&program);
        for workers in [1usize, 2, 8] {
            for mode in [QueueMode::Fifo, QueueMode::Stealing] {
                let actual = run_parallel_with(&program, workers, mode, Submission::Batched);
                assert_eq!(
                    actual, expected,
                    "case {case}: batched {workers} workers / {mode:?} diverged from the sequential semantics"
                );
            }
        }
    }
}

/// Single-worker FIFO agreement across the refactor: the batched and
/// singleton submission paths build the same dependence graph and produce
/// bit-identical region contents on the same randomized programs. (The
/// instantaneous queue interleaving between master and worker is timing-
/// dependent under singleton submission — as it was pre-refactor — so the
/// invariant asserted here is graph + dataflow-result identity, which is
/// what the THT results depend on.)
#[test]
fn batched_and_singleton_submission_agree_bit_for_bit_on_fifo() {
    let mut rng = Xoshiro256StarStar::new(0xF1F0_0001);
    for case in 0..CASES {
        let program = gen_program(&mut rng);
        let singleton = run_parallel_with(&program, 1, QueueMode::Fifo, Submission::Singleton);
        let batched = run_parallel_with(&program, 1, QueueMode::Fifo, Submission::Batched);
        assert_eq!(singleton, batched, "case {case}");
    }
}

/// Long-running retirement stress: ≥ 50k tasks in waves across 1/2/8
/// workers × both queue modes. The peak resident node count must be
/// bounded by a constant (the in-flight wave), independent of the total
/// number of tasks submitted — the graph must not grow with the run.
#[test]
fn retirement_keeps_live_nodes_bounded_over_long_runs() {
    const WAVES: usize = 20;
    const WAVE_SIZE: usize = 500;
    const CHAINS: usize = 25;
    let configurations: [(usize, QueueMode); 6] = [
        (1, QueueMode::Fifo),
        (2, QueueMode::Fifo),
        (8, QueueMode::Fifo),
        (1, QueueMode::Stealing),
        (2, QueueMode::Stealing),
        (8, QueueMode::Stealing),
    ];
    // 6 configurations × 20 waves × 500 tasks = 60 000 tasks.
    for (workers, mode) in configurations {
        let rt = RuntimeBuilder::new()
            .workers(workers)
            .queue_mode(mode)
            .build();
        let cells: Vec<Region<f64>> = (0..CHAINS)
            .map(|c| rt.store().register_zeros(format!("cell{c}"), 1).unwrap())
            .collect();
        let incr = rt.register_task_type(
            TaskTypeBuilder::new("incr", |ctx| {
                let v = ctx.arg::<f64>(0)[0];
                ctx.out(0, &[v + 1.0]);
            })
            .inout::<f64>()
            .build(),
        );
        let mut peak_live = 0u64;
        for wave in 1..=WAVES as u64 {
            let mut batch = rt.tasks(incr);
            for t in 0..WAVE_SIZE {
                batch = batch.next().reads_writes(&cells[t % CHAINS]);
            }
            batch.submit_all().expect("stress tasks fit the signature");
            // Mid-flight the resident count is bounded by the wave…
            peak_live = peak_live.max(rt.stats().live_nodes);
            rt.taskwait();
            // …and a drained wave retires completely: memory does not grow
            // with the number of waves already executed.
            let stats = rt.stats();
            assert_eq!(
                stats.live_nodes, 0,
                "{workers} workers / {mode:?}: wave {wave} left resident nodes"
            );
            assert_eq!(stats.retired_nodes, wave * WAVE_SIZE as u64);
            assert!(
                peak_live <= WAVE_SIZE as u64,
                "{workers} workers / {mode:?}: peak {peak_live} exceeded the wave bound"
            );
        }
        let total = (WAVES * WAVE_SIZE) as u64;
        let stats = rt.stats();
        assert_eq!(stats.executed, total);
        assert_eq!(stats.retired_nodes, total);
        // WAVE_SIZE is a multiple of CHAINS, so every chain grew equally.
        let expected = (WAVES * WAVE_SIZE / CHAINS) as f64;
        for (c, cell) in cells.iter().enumerate() {
            assert_eq!(
                rt.store().read(*cell).lock().as_f64(),
                &[expected],
                "{workers} workers / {mode:?}: chain {c}"
            );
        }
        rt.shutdown();
    }
}

/// A pure inout chain is the worst case for dependence release (every task
/// serialises on the previous one): the chain must still run strictly in
/// order under maximal worker counts in both modes.
#[test]
fn long_inout_chains_serialise_under_contention() {
    for mode in [QueueMode::Fifo, QueueMode::Stealing] {
        let rt = RuntimeBuilder::new().workers(8).queue_mode(mode).build();
        let cell = rt.store().register_zeros::<f64>("cell", 1).unwrap();
        let tt = rt.register_task_type(
            TaskTypeBuilder::new("incr", |ctx| {
                let v = ctx.arg::<f64>(0)[0];
                ctx.out(0, &[v + 1.0]);
            })
            .inout::<f64>()
            .build(),
        );
        for _ in 0..500 {
            rt.task(tt).reads_writes(&cell).submit().unwrap();
        }
        rt.taskwait();
        assert_eq!(rt.store().read(cell).lock().as_f64(), &[500.0], "{mode:?}");
        assert_eq!(rt.stats().executed, 500);
        rt.shutdown();
    }
}

/// Wide fan-out: one producer releases hundreds of consumers at once; all
/// of them (and nothing else) must run, in both modes, at every width.
#[test]
fn wide_fanout_releases_every_consumer_exactly_once() {
    for mode in [QueueMode::Fifo, QueueMode::Stealing] {
        for workers in [2usize, 8] {
            let rt = RuntimeBuilder::new()
                .workers(workers)
                .queue_mode(mode)
                .build();
            let src = rt.store().register_zeros::<f64>("src", 1).unwrap();
            let outs: Vec<Region<f64>> = (0..300)
                .map(|i| rt.store().register_zeros(format!("o{i}"), 1).unwrap())
                .collect();
            let produce = rt.register_task_type(
                TaskTypeBuilder::new("produce", |ctx| ctx.out(0, &[7.0f64]))
                    .out::<f64>()
                    .build(),
            );
            let consume = rt.register_task_type(
                TaskTypeBuilder::new("consume", |ctx| {
                    let v = ctx.arg::<f64>(0)[0];
                    ctx.out(1, &[v * 2.0]);
                })
                .arg::<f64>()
                .out::<f64>()
                .build(),
            );
            rt.task(produce).writes(&src).submit().unwrap();
            for out in &outs {
                rt.task(consume).reads(&src).writes(out).submit().unwrap();
            }
            rt.taskwait();
            for out in &outs {
                assert_eq!(
                    rt.store().read(*out).lock().as_f64(),
                    &[14.0],
                    "{mode:?}/{workers}"
                );
            }
            assert_eq!(rt.stats().executed, 301);
            assert_eq!(rt.ready_depth(), 0);
            rt.shutdown();
        }
    }
}
