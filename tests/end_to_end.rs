//! Cross-crate integration tests: every benchmark application, run through
//! the full runtime + ATM stack at a small scale.
//!
//! These encode the paper's headline robustness claims:
//! * the taskified applications compute exactly what their sequential
//!   references compute (the runtime's dataflow execution is correct);
//! * Static ATM never changes the program output (100 % correctness,
//!   Figure 4);
//! * Dynamic ATM keeps the output within a small error of the exact result;
//! * parallel executions are repeatable for the exact configurations.

use atm_apps::{build_app, AppId, RunOptions, Scale};
use atm_core::AtmConfig;
use atm_metrics::euclidean_relative_error;

#[test]
fn taskified_apps_match_their_sequential_references() {
    for id in AppId::ALL {
        let app = build_app(id, Scale::Tiny);
        let run = app.run_tasked(&RunOptions::baseline(3));
        let err = euclidean_relative_error(app.reference(), &run.output);
        assert!(
            err < 1e-10,
            "{id}: taskified output diverges from the sequential reference (err = {err})"
        );
        assert_eq!(
            run.runtime_stats.executed, run.runtime_stats.submitted,
            "{id}: without ATM every submitted task must execute"
        );
        assert_eq!(
            run.atm_stats.seen, 0,
            "{id}: the Off engine must not see any task"
        );
    }
}

#[test]
fn static_atm_is_always_exact() {
    // "Exact" means: the ATM run produces bit-for-bit the same program
    // output as the no-ATM run (the LU residual is non-zero even without
    // ATM, so equality against the baseline is the right check).
    for id in AppId::ALL {
        let app = build_app(id, Scale::Tiny);
        let run = app.run_tasked(&RunOptions::with_atm(3, AtmConfig::static_atm()));
        let err = euclidean_relative_error(app.reference(), &run.output);
        assert_eq!(
            err, 0.0,
            "{id}: Static ATM changed the program output (err = {err})"
        );
        let correctness = app.correctness_percent(&run.output);
        let baseline_correctness = app.correctness_percent(app.reference());
        assert!(
            (correctness - baseline_correctness).abs() < 1e-9,
            "{id}: Static ATM correctness ({correctness}) differs from the baseline ({baseline_correctness})"
        );
    }
}

#[test]
fn static_atm_without_ikt_is_also_exact() {
    for id in [AppId::Blackscholes, AppId::Jacobi, AppId::SparseLu] {
        let app = build_app(id, Scale::Tiny);
        let run = app.run_tasked(&RunOptions::with_atm(
            3,
            AtmConfig::static_atm().without_ikt(),
        ));
        let err = euclidean_relative_error(app.reference(), &run.output);
        assert_eq!(err, 0.0, "{id}: THT-only Static ATM must stay exact");
        assert_eq!(
            run.atm_stats.ikt_deferred, 0,
            "{id}: the IKT is disabled, nothing may be deferred"
        );
    }
}

#[test]
fn dynamic_atm_bounds_the_accuracy_loss() {
    // The paper reports at most 3.2 % correctness loss; at the reduced test
    // scale we allow a wider margin but the loss must stay bounded.
    for id in AppId::ALL {
        let app = build_app(id, Scale::Tiny);
        let run = app.run_tasked(&RunOptions::with_atm(2, AtmConfig::dynamic_atm()));
        let correctness = app.correctness_percent(&run.output);
        assert!(
            correctness > 80.0,
            "{id}: Dynamic ATM correctness dropped to {correctness:.2}%"
        );
    }
}

#[test]
fn exact_configurations_are_repeatable_across_parallel_runs() {
    for id in [AppId::Blackscholes, AppId::GaussSeidel, AppId::Swaptions] {
        let app = build_app(id, Scale::Tiny);
        let first = app.run_tasked(&RunOptions::with_atm(4, AtmConfig::static_atm()));
        let second = app.run_tasked(&RunOptions::with_atm(4, AtmConfig::static_atm()));
        assert_eq!(
            first.output, second.output,
            "{id}: Static ATM outputs must be repeatable"
        );
        let baseline = app.run_tasked(&RunOptions::baseline(4));
        assert_eq!(
            first.output, baseline.output,
            "{id}: Static ATM must equal the no-ATM output"
        );
    }
}

#[test]
fn memoization_actually_avoids_work_where_the_paper_says_it_does() {
    // Blackscholes, the stencils, LU and Swaptions all have exact task
    // redundancy; Kmeans is the one benchmark where exact matching finds
    // (almost) nothing.
    for id in [
        AppId::Blackscholes,
        AppId::Jacobi,
        AppId::SparseLu,
        AppId::Swaptions,
    ] {
        let app = build_app(id, Scale::Tiny);
        let run = app.run_tasked(&RunOptions::with_atm(2, AtmConfig::static_atm()));
        assert!(
            run.atm_stats.reused() > 0,
            "{id}: Static ATM found no redundancy at all"
        );
        assert!(
            run.runtime_stats.executed < run.runtime_stats.submitted,
            "{id}: some submitted tasks should have been bypassed"
        );
    }
}

#[test]
fn atm_memory_overhead_is_accounted_and_bounded() {
    // Table III (3.7 % – 21.2 % overhead) is reproduced at the `small`
    // evaluation scale by `atm-eval table3`; at the tiny test scale the
    // application footprint is so small that the THT can be a multiple of
    // it, so here we only check that the accounting is present and bounded
    // by the THT capacity rather than growing without limit.
    for id in AppId::ALL {
        let app = build_app(id, Scale::Tiny);
        let run = app.run_tasked(&RunOptions::with_atm(2, AtmConfig::static_atm()));
        let overhead = run.memory_overhead_percent();
        assert!(
            overhead.is_finite() && overhead >= 0.0,
            "{id}: overhead not accounted"
        );
        assert!(
            run.atm_memory_bytes > 0,
            "{id}: ATM structures must consume some memory"
        );
        assert!(
            overhead < 500.0,
            "{id}: ATM memory overhead out of control ({overhead:.1}% of the application)"
        );
    }
}

#[test]
fn oracle_style_fixed_p_runs_work_for_every_app() {
    for id in AppId::ALL {
        let app = build_app(id, Scale::Tiny);
        let run = app.run_tasked(&RunOptions::with_atm(2, AtmConfig::fixed_p(0.25)));
        // A fixed-p run must complete and produce a full-sized output.
        assert_eq!(
            run.output.len(),
            app.reference().len(),
            "{id}: truncated output"
        );
    }
}
