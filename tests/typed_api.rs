//! Integration tests of the typed region handles and the validating
//! submission builder: round-trip properties for `Region<T>` typed
//! accessors, and one test per [`SubmitError`] variant.

use atm_hash::Xoshiro256StarStar;
use atm_suite::prelude::*;

const CASES: usize = 32;

/// Registering a typed vector and reading it back through the store and
/// through a kernel's typed accessors must round-trip exactly, for every
/// element type and random contents.
#[test]
fn region_round_trips_through_store_and_kernel() {
    let mut rng = Xoshiro256StarStar::new(0x0707);
    for case in 0..CASES {
        let len = 1 + rng.below(64);
        let rt = RuntimeBuilder::new().build();

        let f32_data: Vec<f32> = (0..len).map(|_| rng.next_f32() * 100.0 - 50.0).collect();
        let f64_data: Vec<f64> = (0..len).map(|_| rng.next_f64() * 1e6 - 5e5).collect();
        let i32_data: Vec<i32> = (0..len).map(|_| rng.next_u32() as i32).collect();

        let f32_in = rt
            .store()
            .register_typed("f32_in", f32_data.clone())
            .unwrap();
        let f64_in = rt
            .store()
            .register_typed("f64_in", f64_data.clone())
            .unwrap();
        let i32_in = rt
            .store()
            .register_typed("i32_in", i32_data.clone())
            .unwrap();
        let f32_out = rt.store().register_zeros::<f32>("f32_out", len).unwrap();
        let f64_out = rt.store().register_zeros::<f64>("f64_out", len).unwrap();
        let i32_out = rt.store().register_zeros::<i32>("i32_out", len).unwrap();

        // Store-level round trip.
        assert_eq!(rt.store().contents(&f32_in), f32_data, "case {case}");
        assert_eq!(rt.store().contents(&f64_in), f64_data, "case {case}");
        assert_eq!(rt.store().contents(&i32_in), i32_data, "case {case}");

        // Kernel-level round trip: copy each input to its output through the
        // typed accessors; what comes out must be bit-identical.
        let copy3 = rt.register_task_type(
            TaskTypeBuilder::new("copy3", |ctx| {
                ctx.out(3, &ctx.arg::<f32>(0));
                ctx.out(4, &ctx.arg::<f64>(1));
                ctx.out(5, &ctx.arg::<i32>(2));
            })
            .arg::<f32>()
            .arg::<f64>()
            .arg::<i32>()
            .out::<f32>()
            .out::<f64>()
            .out::<i32>()
            .build(),
        );
        rt.task(copy3)
            .reads(&f32_in)
            .reads(&f64_in)
            .reads(&i32_in)
            .writes(&f32_out)
            .writes(&f64_out)
            .writes(&i32_out)
            .submit()
            .unwrap();
        rt.taskwait();

        assert_eq!(
            rt.store().contents(&f32_out),
            f32_data,
            "case {case}: f32 round trip"
        );
        assert_eq!(
            rt.store().contents(&f64_out),
            f64_data,
            "case {case}: f64 round trip"
        );
        assert_eq!(
            rt.store().contents(&i32_out),
            i32_data,
            "case {case}: i32 round trip"
        );
        rt.shutdown();
    }
}

/// Ranged accesses round-trip through the typed accessors as well: writing
/// a random window of a region touches exactly that window.
#[test]
fn ranged_typed_accessors_only_touch_their_window() {
    let mut rng = Xoshiro256StarStar::new(0x30B);
    for case in 0..CASES {
        let len = 8 + rng.below(56);
        let start = rng.below(len - 1);
        let end = start + 1 + rng.below(len - start - 1);
        let rt = RuntimeBuilder::new().build();
        let region = rt.store().register_zeros::<f64>("r", len).unwrap();
        let fill = rt.register_task_type(
            TaskTypeBuilder::new("fill_window", |ctx| {
                let window = ctx.elem_range(0);
                ctx.out(0, &vec![1.0f64; window.len()]);
            })
            .build(),
        );
        rt.task(fill)
            .access(Access::write(&region).with_range(start * 8..end * 8))
            .submit()
            .unwrap();
        rt.taskwait();
        let contents = rt.store().contents(&region);
        for (i, &v) in contents.iter().enumerate() {
            let expected = if (start..end).contains(&i) { 1.0 } else { 0.0 };
            assert_eq!(
                v, expected,
                "case {case}: element {i} (window {start}..{end})"
            );
        }
        rt.shutdown();
    }
}

fn two_param_type(rt: &Runtime) -> TaskTypeId {
    rt.register_task_type(
        TaskTypeBuilder::new("copy", |ctx| {
            let v = ctx.arg::<f64>(0);
            ctx.out(1, &v);
        })
        .arg::<f64>()
        .out::<f64>()
        .build(),
    )
}

#[test]
fn unknown_task_type_is_reported() {
    let rt = RuntimeBuilder::new().build();
    let r = rt.store().register_zeros::<f64>("r", 1).unwrap();
    let bogus = TaskTypeId::from_raw(42);
    assert_eq!(
        rt.task(bogus).reads(&r).submit(),
        Err(SubmitError::UnknownTaskType { task_type: bogus })
    );
}

#[test]
fn unknown_region_is_reported() {
    let rt = RuntimeBuilder::new().build();
    let other = RuntimeBuilder::new().build();
    let foreign = other.store().register_zeros::<f64>("foreign", 1).unwrap();
    let local = rt.store().register_zeros::<f64>("local", 1).unwrap();
    let tt = two_param_type(&rt);
    // `local` occupies slot 0 in `rt`; the foreign handle also has index 0,
    // so push it to a slot `rt` does not have.
    let _ = local;
    let foreign2 = other.store().register_zeros::<f64>("foreign2", 1).unwrap();
    assert_eq!(
        rt.task(tt).reads(&foreign).writes(&foreign2).submit(),
        Err(SubmitError::UnknownRegion {
            index: 1,
            region: foreign2.id()
        })
    );
}

#[test]
fn region_type_mismatch_is_reported() {
    let rt = RuntimeBuilder::new().build();
    let other = RuntimeBuilder::new().build();
    // Slot 0 in `rt` holds f32; a foreign f64 handle with the same index is
    // caught by the store check.
    let _local = rt.store().register_zeros::<f32>("local", 1).unwrap();
    let foreign = other.store().register_zeros::<f64>("foreign", 1).unwrap();
    let tt = rt.register_task_type(TaskTypeBuilder::new("t", |_| {}).build());
    let err = rt.task(tt).reads(&foreign).submit().unwrap_err();
    match err {
        SubmitError::RegionTypeMismatch {
            index,
            declared,
            stored,
        } => {
            assert_eq!(index, 0);
            assert_eq!(declared, foreign.elem_type());
            assert_ne!(declared, stored);
        }
        other => panic!("expected a region type mismatch, got {other}"),
    }
}

#[test]
fn arity_mismatch_is_reported() {
    let rt = RuntimeBuilder::new().build();
    let r = rt.store().register_zeros::<f64>("r", 1).unwrap();
    let tt = two_param_type(&rt);
    assert_eq!(
        rt.task(tt).reads(&r).submit(),
        Err(SubmitError::ArityMismatch {
            min: 2,
            max: Some(2),
            got: 1
        })
    );
    let extra = rt.store().register_zeros::<f64>("extra", 1).unwrap();
    assert_eq!(
        rt.task(tt).reads(&r).writes(&extra).writes(&extra).submit(),
        Err(SubmitError::ArityMismatch {
            min: 2,
            max: Some(2),
            got: 3
        })
    );
}

#[test]
fn mode_mismatch_is_reported() {
    let rt = RuntimeBuilder::new().build();
    let a = rt.store().register_zeros::<f64>("a", 1).unwrap();
    let b = rt.store().register_zeros::<f64>("b", 1).unwrap();
    let tt = two_param_type(&rt);
    assert_eq!(
        rt.task(tt).writes(&a).writes(&b).submit(),
        Err(SubmitError::ModeMismatch {
            index: 0,
            expected: AccessMode::In,
            got: AccessMode::Out
        })
    );
    assert_eq!(
        rt.task(tt).reads(&a).reads_writes(&b).submit(),
        Err(SubmitError::ModeMismatch {
            index: 1,
            expected: AccessMode::Out,
            got: AccessMode::InOut
        })
    );
}

#[test]
fn type_mismatch_is_reported() {
    let rt = RuntimeBuilder::new().build();
    let doubles = rt.store().register_zeros::<f64>("doubles", 1).unwrap();
    let floats = rt.store().register_zeros::<f32>("floats", 1).unwrap();
    let tt = two_param_type(&rt);
    let err = rt
        .task(tt)
        .reads(&doubles)
        .writes(&floats)
        .submit()
        .unwrap_err();
    match err {
        SubmitError::TypeMismatch {
            index,
            expected,
            got,
        } => {
            assert_eq!(index, 1);
            assert_eq!(expected, doubles.elem_type());
            assert_eq!(got, floats.elem_type());
        }
        other => panic!("expected a signature type mismatch, got {other}"),
    }
}

/// A rejected submission must leave the runtime fully usable: nothing is
/// counted, nothing deadlocks, and a following valid submission runs.
#[test]
fn rejected_submissions_leave_the_runtime_consistent() {
    let rt = RuntimeBuilder::new().workers(2).build();
    let input = rt.store().register_typed("in", vec![21.0f64]).unwrap();
    let out = rt.store().register_zeros::<f64>("out", 1).unwrap();
    let tt = two_param_type(&rt);
    assert!(rt.task(tt).reads(&input).submit().is_err());
    rt.taskwait();
    assert_eq!(rt.stats().submitted, 0);
    rt.task(tt).reads(&input).writes(&out).submit().unwrap();
    rt.taskwait();
    assert_eq!(rt.store().contents(&out), vec![21.0]);
    assert_eq!(rt.stats().submitted, 1);
    rt.shutdown();
}

/// Duplicate region names surface as a `RegisterError` from the store.
#[test]
fn duplicate_region_names_are_rejected_at_registration() {
    let rt = RuntimeBuilder::new().build();
    rt.store().register_zeros::<f64>("shared", 1).unwrap();
    let err = rt.store().register_zeros::<f64>("shared", 2).unwrap_err();
    assert_eq!(err, RegisterError::DuplicateName("shared".to_string()));
}
