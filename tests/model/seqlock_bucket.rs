//! Protocol 6 — seqlock slot publication and hazard-pointer reclamation
//! (the lock-free memo-store read path).
//!
//! The store's buckets are fixed arrays of seqlock-versioned slots: a
//! writer bumps the slot's version to odd, rewrites the fields, bumps it
//! back to even; a reader loads the version (retrying odd), reads the
//! fields, and accepts them only if a re-read of the version is unchanged.
//! The replaced outputs pointer is not freed while any reader holds it in a
//! hazard slot. Two disciplines, two model pairs:
//!
//! * **Tear-free publication.** The positive model runs two readers
//!   against a writer republishing a two-field payload whose invariant
//!   (`hi == 2 * lo`) only holds within one publication; every *accepted*
//!   read must satisfy it, across bounded-exhaustive and seeded-random
//!   exploration. The negative model drops the version bumps — the only
//!   thing that orders the field accesses — and models the payload as
//!   plain (non-atomic) data, exactly what the fields would be if the
//!   version handshake were not there: the checker must find the
//!   unsynchronised overlap as a [`FailureKind::DataRace`] and replay it.
//!
//! * **Hazard reclamation.** A reader publishes the pointer it is about to
//!   dereference in a hazard slot and revalidates afterwards; the writer
//!   retires a replaced pointer only if no hazard protects it. The
//!   positive model asserts a protected pointer is never freed under the
//!   reader's feet; the negative writer skips the hazard scan and frees
//!   unconditionally, and the checker must find the use-after-free (the
//!   model's assert, a [`FailureKind::Panic`]) and replay it.

use atm_sync::atomic::Ordering;
use atm_sync::check::sync::{AtomicU64, Data, Mutex};
use atm_sync::check::{thread, Checker, FailureKind};
use std::sync::Arc;

/// One slot: a seqlock version over a two-word payload whose halves must
/// be observed from the same publication.
struct SlotModel {
    version: AtomicU64,
    lo: AtomicU64,
    hi: AtomicU64,
}

/// Publishes generation `g` the shipped way: odd bump, field writes, even
/// bump.
fn publish(slot: &SlotModel, g: u64) {
    let v = slot.version.fetch_add(1, Ordering::SeqCst);
    assert!(
        v.is_multiple_of(2),
        "writers serialise; the version was stable"
    );
    slot.lo.store(g, Ordering::Relaxed);
    slot.hi.store(2 * g, Ordering::Relaxed);
    slot.version.fetch_add(1, Ordering::SeqCst);
}

/// One bounded read attempt: returns the payload only if the version was
/// even and unchanged around the field reads (the accept path).
fn try_read(slot: &SlotModel) -> Option<(u64, u64)> {
    let v1 = slot.version.load(Ordering::Acquire);
    if !v1.is_multiple_of(2) {
        return None;
    }
    let lo = slot.lo.load(Ordering::Relaxed);
    let hi = slot.hi.load(Ordering::Relaxed);
    if slot.version.load(Ordering::SeqCst) != v1 {
        return None;
    }
    Some((lo, hi))
}

/// Two readers race a writer republishing the slot twice; every accepted
/// read must come from exactly one publication.
fn seqlock_model() {
    let slot = Arc::new(SlotModel {
        version: AtomicU64::new(0),
        lo: AtomicU64::new(0),
        hi: AtomicU64::new(0),
    });
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                for _ in 0..2 {
                    if let Some((lo, hi)) = try_read(&slot) {
                        assert_eq!(hi, 2 * lo, "a torn slot was accepted");
                    }
                }
            })
        })
        .collect();
    publish(&slot, 1);
    publish(&slot, 2);
    for r in readers {
        r.join();
    }
    assert_eq!(slot.version.load(Ordering::SeqCst), 4);
}

#[test]
fn seqlock_reads_are_tear_free_under_bounded_exhaustive_search() {
    let report = Checker::exhaustive()
        .max_schedules(5_000)
        .check(seqlock_model);
    report.assert_passed();
    assert!(report.schedules > 100, "expected a real exploration");
}

#[test]
fn seqlock_reads_survive_randomized_exploration() {
    let report = Checker::random(0x5E9_10CC, 300).check(seqlock_model);
    report.assert_passed();
}

/// The negative: the version bumps are dropped, so nothing orders the
/// field accesses — which is exactly what the fields are without the
/// handshake, so the model stores them as plain [`Data`]. The reader still
/// runs its validation and *passes* it (the version never moves off 0):
/// the torn-read window the discipline exists to close.
fn dropped_bump_model() {
    let version = Arc::new(AtomicU64::new(0));
    let payload = Arc::new(Data::new(0u64));
    let reader = {
        let version = Arc::clone(&version);
        let payload = Arc::clone(&payload);
        thread::spawn(move || {
            let v1 = version.load(Ordering::Acquire);
            if !v1.is_multiple_of(2) {
                return;
            }
            let value = payload.get();
            if version.load(Ordering::SeqCst) == v1 {
                // "Accepted" — yet nothing ordered the read above against
                // the writer's plain write.
                let _ = value;
            }
        })
    };
    payload.set(7);
    reader.join();
}

#[test]
fn dropping_the_version_bump_is_a_data_race() {
    let report = Checker::exhaustive()
        .max_schedules(100_000)
        .check(dropped_bump_model);
    assert_eq!(
        report.failure_kind(),
        Some(FailureKind::DataRace),
        "expected the unsynchronised field access, got {:?}",
        report.failure
    );
    let failure = report.failure.unwrap();
    let replayed = Checker::exhaustive().replay(dropped_bump_model, &failure.schedule);
    assert_eq!(replayed.failure_kind(), Some(FailureKind::DataRace));
}

/// Hazard reclamation, shrunk to its decision point: `published` holds the
/// current "pointer" (a nonzero id), the reader parks the id it read in
/// `hazard` and revalidates, the writer swaps in a replacement and frees
/// the old id only if no hazard protects it.
struct ReclaimModel {
    published: AtomicU64,
    hazard: AtomicU64,
    freed: Mutex<Vec<u64>>,
}

impl ReclaimModel {
    fn new() -> Self {
        ReclaimModel {
            published: AtomicU64::new(1),
            hazard: AtomicU64::new(0),
            freed: Mutex::new(Vec::new()),
        }
    }

    /// The reader side of protocol 6's R3: protect, revalidate, deref.
    fn read(&self) {
        let p = self.published.load(Ordering::SeqCst);
        self.hazard.store(p, Ordering::SeqCst);
        if self.published.load(Ordering::SeqCst) != p {
            // Revalidation failed: the slot moved on; never dereference.
            self.hazard.store(0, Ordering::SeqCst);
            return;
        }
        // Dereference: the pointer we validated must not have been freed.
        assert!(
            !self.freed.lock().contains(&p),
            "dereferenced a freed pointer"
        );
        self.hazard.store(0, Ordering::SeqCst);
    }

    /// The writer side: replace, then retire the old pointer — scanning
    /// the hazard slots first unless the seeded bug (`skip_scan`) is on.
    /// A protected pointer simply stays parked (the real store's limbo
    /// list); the model needs only "not freed now".
    fn replace(&self, skip_scan: bool) {
        let old = self.published.swap(2, Ordering::SeqCst);
        if skip_scan || self.hazard.load(Ordering::SeqCst) != old {
            self.freed.lock().push(old);
        }
    }
}

fn reclaim_model(skip_scan: bool) {
    let model = Arc::new(ReclaimModel::new());
    let reader = {
        let model = Arc::clone(&model);
        thread::spawn(move || model.read())
    };
    model.replace(skip_scan);
    reader.join();
}

#[test]
fn hazard_protected_pointers_are_never_freed() {
    let report = Checker::exhaustive()
        .max_schedules(5_000)
        .check(|| reclaim_model(false));
    report.assert_passed();
    assert!(report.schedules > 10, "expected a real exploration");
    Checker::random(0x4A2A_12D5, 300)
        .check(|| reclaim_model(false))
        .assert_passed();
}

#[test]
fn skipping_the_hazard_scan_is_a_use_after_free() {
    let report = Checker::exhaustive()
        .max_schedules(100_000)
        .check(|| reclaim_model(true));
    assert_eq!(
        report.failure_kind(),
        Some(FailureKind::Panic),
        "expected the use-after-free assert, got {:?}",
        report.failure
    );
    let failure = report.failure.unwrap();
    let replayed = Checker::exhaustive().replay(|| reclaim_model(true), &failure.schedule);
    assert_eq!(replayed.failure_kind(), Some(FailureKind::Panic));
}
