//! Protocol 1 — sleepers-stack targeted wakeup.
//!
//! `StealingQueue` parks idle workers on a Treiber-style stack of sleeper
//! slots. A push *claims* one sleeper off the stack and signals exactly
//! that worker: claiming is taking responsibility for the wakeup, and the
//! wakeup budget is one-per-push. Close wakes whoever is still on the
//! stack; a claimed worker is off the stack, so its signal must come from
//! its claimer — a claim without a signal is a worker that sleeps forever.
//!
//! `MiniQueue` mirrors the protocol's moving parts (task counter, sleeper
//! stack, per-worker sticky event, closed flag) with two looping workers.
//! The loop space is too large to exhaust, so the positive models use the
//! bounded-exhaustive and seeded-random strategies; the negative model is
//! a scripted single park — exhaustively explorable — where the claimer
//! spends the budget without signalling, which the checker must report as
//! a deadlock.

use atm_sync::atomic::Ordering;
use atm_sync::check::sync::{AtomicBool, AtomicUsize, Event, Mutex};
use atm_sync::check::{thread, Checker, FailureKind};
use std::sync::Arc;

const WORKERS: usize = 2;

struct MiniQueue {
    tasks: Mutex<Vec<u32>>,
    pending: AtomicUsize,
    closed: AtomicBool,
    sleepers: Mutex<Vec<usize>>,
    parker: [Event; WORKERS],
}

impl MiniQueue {
    fn new() -> Self {
        MiniQueue {
            tasks: Mutex::new(Vec::new()),
            pending: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            sleepers: Mutex::new(Vec::new()),
            parker: [Event::new(), Event::new()],
        }
    }

    /// `push` + `wake_after_push`: count, land, claim one sleeper, signal
    /// exactly the claimed worker.
    fn push(&self, task: u32) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.tasks.lock().push(task);
        if let Some(w) = self.sleepers.lock().pop() {
            self.parker[w].signal();
        }
    }

    /// Close: anyone still on the stack gets the shutdown wakeup.
    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        let stranded = std::mem::take(&mut *self.sleepers.lock());
        for w in stranded {
            self.parker[w].signal();
        }
    }

    /// Worker loop: consume until closed and drained, parking in between.
    /// Returns how many tasks this worker consumed.
    fn work(&self, me: usize) -> u32 {
        let mut consumed = 0;
        loop {
            if self.tasks.lock().pop().is_some() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                consumed += 1;
                continue;
            }
            if self.closed.load(Ordering::SeqCst) && self.pending.load(Ordering::SeqCst) == 0 {
                return consumed;
            }
            // Announce the park: reset the sticky event and publish the slot
            // in one critical section (protocol 2's discipline).
            {
                let mut stack = self.sleepers.lock();
                self.parker[me].reset();
                stack.push(me);
            }
            // Re-check after the announcement.
            if self.pending.load(Ordering::SeqCst) > 0 || self.closed.load(Ordering::SeqCst) {
                let mut stack = self.sleepers.lock();
                if let Some(at) = stack.iter().position(|&w| w == me) {
                    // Not claimed yet: withdraw the park and retry. The
                    // yield keeps the checker's step budget honest — a
                    // spin-retry must cede to whoever owns the progress.
                    stack.remove(at);
                    drop(stack);
                    thread::yield_now();
                    continue;
                }
                // Already claimed: our wakeup is in flight (sticky), so
                // falling through to the wait cannot lose it.
            }
            self.parker[me].wait();
        }
    }
}

/// Two workers race two pushes and a close; every schedule must terminate
/// with both tasks consumed exactly once.
fn mini_queue_model() {
    let q = Arc::new(MiniQueue::new());
    let handles: Vec<_> = (0..WORKERS)
        .map(|me| {
            let q = Arc::clone(&q);
            thread::spawn(move || q.work(me))
        })
        .collect();
    q.push(1);
    q.push(2);
    q.close();
    let consumed: u32 = handles.into_iter().map(|h| h.join()).sum();
    assert_eq!(consumed, 2, "every pushed task is consumed exactly once");
    assert_eq!(q.pending.load(Ordering::SeqCst), 0);
    assert!(q.sleepers.lock().is_empty(), "no worker left parked");
}

#[test]
fn targeted_wakeup_drains_and_terminates_under_bounded_exhaustive_search() {
    // The looping model's schedule space is unbounded-ish; explore a
    // deterministic prefix of it exhaustively.
    let report = Checker::exhaustive()
        .max_schedules(3_000)
        .check(mini_queue_model);
    report.assert_passed();
    assert!(report.schedules > 100, "expected a real exploration");
}

#[test]
fn targeted_wakeup_survives_randomized_exploration() {
    // PCT-style randomized schedules reach deep interleavings the DFS
    // prefix does not; the seed makes failures reproducible.
    let report = Checker::random(0x5EED_CAFE, 300).check(mini_queue_model);
    report.assert_passed();
}

/// The negative: a scripted single park where the pusher claims the
/// sleeper but never signals — the budget is spent, close finds an empty
/// stack, and the worker sleeps forever.
fn claim_without_signal_model() {
    let q = Arc::new(MiniQueue::new());
    let q2 = Arc::clone(&q);
    let worker = thread::spawn(move || {
        // One scripted park attempt (the prefix of `work`).
        {
            let mut stack = q2.sleepers.lock();
            q2.parker[0].reset();
            stack.push(0);
        }
        if q2.pending.load(Ordering::SeqCst) > 0 {
            let mut stack = q2.sleepers.lock();
            if let Some(at) = stack.iter().position(|&w| w == 0) {
                stack.remove(at);
            }
            return;
        }
        q2.parker[0].wait();
    });
    // A push whose wake_after_push claims the sleeper off the stack but
    // "optimizes away" the signal.
    q.pending.fetch_add(1, Ordering::SeqCst);
    q.tasks.lock().push(1);
    let _claimed_without_signal = q.sleepers.lock().pop();
    // Close correctly wakes the stack — but the claimed worker is gone
    // from it, so this cannot save it.
    q.close();
    worker.join();
}

#[test]
fn a_claim_without_a_signal_is_a_lost_wakeup() {
    let report = Checker::exhaustive()
        .max_schedules(100_000)
        .check(claim_without_signal_model);
    assert_eq!(
        report.failure_kind(),
        Some(FailureKind::Deadlock),
        "expected the stranded-sleeper deadlock, got {:?}",
        report.failure
    );
    let failure = report.failure.unwrap();
    let replayed = Checker::exhaustive().replay(claim_without_signal_model, &failure.schedule);
    assert_eq!(replayed.failure_kind(), Some(FailureKind::Deadlock));
}
