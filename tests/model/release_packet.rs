//! Protocol 5 — packeted release flush (the PR-9 aggregation).
//!
//! A finish cycle no longer publishes released successors one at a time:
//! the worker accumulates every task the cycle readies into a packet and
//! flushes once — count `pending` for the whole packet, land the tasks,
//! claim up to packet-size sleepers off the stack and signal each, then
//! retire the whole cycle from `outstanding` with a single decrement. The
//! ordering teeth: the tasks must be *countable and visible before* any
//! sleeper is claimed, because claiming spends the one-per-task wakeup
//! budget; and the `outstanding` decrement must cover exactly the tasks
//! the cycle finished, or a blocked taskwait returns early / never.
//!
//! The positive model runs one packeted flush against two looping
//! consumers and a taskwait, asserting every released task is consumed
//! exactly once and the waiter terminates, across bounded-exhaustive and
//! seeded-random exploration. The negative model reorders the flush —
//! wakeup first, tasks after — and the checker must find the schedule
//! where the woken worker finds nothing, re-parks before the tasks land,
//! and sleeps forever on a non-empty queue: the classic lost wakeup the
//! flush ordering exists to prevent.

use atm_sync::atomic::Ordering;
use atm_sync::check::sync::{AtomicBool, AtomicUsize, Event, Mutex};
use atm_sync::check::{thread, Checker, FailureKind};
use std::sync::Arc;

const WORKERS: usize = 2;
/// Successors released by the one modelled finish cycle.
const PACKET: usize = 3;

struct PacketRuntime {
    tasks: Mutex<Vec<u32>>,
    pending: AtomicUsize,
    closed: AtomicBool,
    sleepers: Mutex<Vec<usize>>,
    parker: [Event; WORKERS],
    /// Submitted-but-unfinished count: the producer plus its successors.
    outstanding: AtomicUsize,
    done_lock: Mutex<()>,
    done: Event,
    /// Per-task consumption counts (exactly-once is the property).
    consumed: Mutex<[u32; PACKET]>,
}

impl PacketRuntime {
    fn new() -> Self {
        PacketRuntime {
            tasks: Mutex::new(Vec::new()),
            pending: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            sleepers: Mutex::new(Vec::new()),
            parker: [Event::new(), Event::new()],
            // The producer task itself plus the successors it will release.
            outstanding: AtomicUsize::new(1 + PACKET),
            done_lock: Mutex::new(()),
            done: Event::new(),
            consumed: Mutex::new([0; PACKET]),
        }
    }

    /// The shipped flush: count, land, wake (≤ packet-size claims), retire
    /// the producer. `reordered` spends the wakeup budget *before* the
    /// tasks are countable — the seeded bug.
    fn flush_packet(&self, reordered: bool) {
        if reordered {
            self.wake(PACKET);
            self.land();
        } else {
            self.land();
            self.wake(PACKET);
        }
        // One decrement for the producer; the successors retire themselves
        // as the consumers finish them.
        self.retire(1);
    }

    fn land(&self) {
        // Count and land under one lock: a consumer that observes the
        // count can always pop the tasks once it takes the lock. (The real
        // queue gets the same guarantee from its consumers' retry loop;
        // the scripted negative model below has no loop to lean on.)
        let mut tasks = self.tasks.lock();
        self.pending.fetch_add(PACKET, Ordering::SeqCst);
        for t in 0..PACKET as u32 {
            tasks.push(t);
        }
    }

    /// Batched wakeup: one claim per pushed task, stop when the stack runs
    /// dry. A claimed sleeper is off the stack and *must* be signalled.
    fn wake(&self, budget: usize) {
        for _ in 0..budget {
            let claimed = self.sleepers.lock().pop();
            match claimed {
                Some(w) => self.parker[w].signal(),
                None => break,
            }
        }
    }

    /// Retires `n` finished tasks from `outstanding`; the final decrement
    /// owns the taskwait wakeup (signalled under the lock the waiter
    /// re-checks under, so it cannot be lost).
    fn retire(&self, n: usize) {
        let prev = self.outstanding.fetch_sub(n, Ordering::SeqCst);
        assert!(prev >= n, "retired more tasks than outstanding");
        if prev == n {
            let _guard = self.done_lock.lock();
            self.done.signal();
        }
    }

    /// Consumer loop: pop, "execute", retire; park between, exit on close.
    fn work(&self, me: usize) {
        loop {
            let popped = self.tasks.lock().pop();
            if let Some(t) = popped {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                self.consumed.lock()[t as usize] += 1;
                self.retire(1);
                continue;
            }
            if self.closed.load(Ordering::SeqCst) && self.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            // Announce the park (protocol 2's reset-then-publish), re-check,
            // then wait on the sticky event.
            {
                let mut stack = self.sleepers.lock();
                self.parker[me].reset();
                stack.push(me);
            }
            if self.pending.load(Ordering::SeqCst) > 0 || self.closed.load(Ordering::SeqCst) {
                let mut stack = self.sleepers.lock();
                if let Some(at) = stack.iter().position(|&w| w == me) {
                    stack.remove(at);
                    drop(stack);
                    thread::yield_now();
                    continue;
                }
            }
            self.parker[me].wait();
        }
    }
}

/// One finish cycle flushes a packet of `PACKET` successors at two looping
/// consumers while the master blocks in taskwait; every schedule must end
/// with each successor consumed exactly once and the waiter released.
fn packet_model(reordered: bool) {
    let rt = Arc::new(PacketRuntime::new());
    let handles: Vec<_> = (0..WORKERS)
        .map(|me| {
            let rt = Arc::clone(&rt);
            thread::spawn(move || rt.work(me))
        })
        .collect();
    rt.flush_packet(reordered);
    // Taskwait: the producer and all its successors must retire.
    rt.done.wait();
    assert_eq!(rt.outstanding.load(Ordering::SeqCst), 0);
    // Shutdown: wake whoever is parked so the workers can exit.
    rt.closed.store(true, Ordering::SeqCst);
    let stranded = std::mem::take(&mut *rt.sleepers.lock());
    for w in stranded {
        rt.parker[w].signal();
    }
    for h in handles {
        h.join();
    }
    let consumed = rt.consumed.lock();
    assert_eq!(
        *consumed, [1; PACKET],
        "every task in the packet is consumed exactly once"
    );
    assert_eq!(rt.pending.load(Ordering::SeqCst), 0);
}

#[test]
fn packeted_flush_is_exactly_once_under_bounded_exhaustive_search() {
    let report = Checker::exhaustive()
        .max_schedules(5_000)
        .check(|| packet_model(false));
    report.assert_passed();
    assert!(report.schedules > 100, "expected a real exploration");
}

#[test]
fn packeted_flush_survives_randomized_exploration() {
    let report = Checker::random(0x9ACC_E77E, 300).check(|| packet_model(false));
    report.assert_passed();
}

/// Drains and retires everything currently in the queue; returns how many
/// tasks were consumed.
fn drain_all(rt: &PacketRuntime) -> usize {
    let mut drained = 0;
    loop {
        let popped = rt.tasks.lock().pop();
        match popped {
            Some(t) => {
                rt.pending.fetch_sub(1, Ordering::SeqCst);
                rt.consumed.lock()[t as usize] += 1;
                rt.retire(1);
                drained += 1;
            }
            None => return drained,
        }
    }
}

/// One scripted park round (announce, re-check, possibly withdraw-and-
/// drain). Returns `true` when the worker drained work and is done,
/// `false` when it should fall through to `wait`.
fn scripted_park(rt: &PacketRuntime, me: usize) -> bool {
    {
        let mut stack = rt.sleepers.lock();
        rt.parker[me].reset();
        stack.push(me);
    }
    if rt.pending.load(Ordering::SeqCst) > 0 {
        let mut stack = rt.sleepers.lock();
        if let Some(at) = stack.iter().position(|&w| w == me) {
            // Not claimed yet: withdraw and consume directly.
            stack.remove(at);
            drop(stack);
            drain_all(rt);
            return true;
        }
        // Already claimed: the signal is in flight (sticky), falling
        // through to the wait cannot lose it.
    }
    false
}

/// The negative, scripted small enough to explore exhaustively: a single
/// consumer against a flush whose wakeup runs *before* the tasks land. The
/// bug window: the claimed worker wakes, finds nothing, re-parks — and the
/// budget is already spent when the tasks finally land.
fn reordered_flush_model() {
    let rt = Arc::new(PacketRuntime::new());
    let rt2 = Arc::clone(&rt);
    let worker = thread::spawn(move || {
        // Round 1: park; if woken, consume whatever landed.
        if scripted_park(&rt2, 0) {
            return;
        }
        rt2.parker[0].wait();
        if drain_all(&rt2) > 0 {
            return;
        }
        // Round 2: woken to an empty queue — park again. With the correct
        // flush order this cannot happen; with the reordered flush this
        // wait can be the one nobody ever signals.
        if scripted_park(&rt2, 0) {
            return;
        }
        rt2.parker[0].wait();
        drain_all(&rt2);
    });
    rt.flush_packet(true);
    rt.done.wait();
    worker.join();
    assert_eq!(*rt.consumed.lock(), [1; PACKET]);
}

#[test]
fn waking_before_the_tasks_land_is_a_lost_wakeup() {
    // Budget spent on a sleeper that re-parks before the tasks become
    // visible: the queue ends non-empty with the consumer asleep and the
    // taskwait blocked — a deadlock the checker must find and replay.
    let report = Checker::exhaustive()
        .max_schedules(100_000)
        .check(reordered_flush_model);
    assert_eq!(
        report.failure_kind(),
        Some(FailureKind::Deadlock),
        "expected the lost-wakeup deadlock, got {:?}",
        report.failure
    );
    let failure = report.failure.unwrap();
    let replayed = Checker::exhaustive().replay(reordered_flush_model, &failure.schedule);
    assert_eq!(replayed.failure_kind(), Some(FailureKind::Deadlock));
}
