//! Regression — the PR-4 IKT deferred hand-off race, rediscovered.
//!
//! The deferred copy-out path (§III-A of the paper) races a worker that is
//! deferring a task against the in-flight producer that completes it. The
//! version shipped in PR 4 asserted the task was still `Running` when the
//! worker got around to marking it `Deferred`; the producer can legally
//! finish the waiter first, and the worker died on the assert. The shipped
//! fix is a tolerant compare-exchange ([`TaskGraph::mark_deferred`]); the
//! buggy original is preserved as `mark_deferred_legacy` exactly so this
//! suite can prove the checker would have caught it.
//!
//! These models drive the *real* `TaskGraph` — not a hand-written replica.
//! In the ordinary build the graph's internals are uninstrumented, so each
//! model thread runs its whole call as one atomic slice and two schedules
//! cover both orders: the bug is found deterministically on the first
//! budgeted run. Under `RUSTFLAGS='--cfg atm_check'` the graph's own
//! atomics and locks become instrumented and the checker interleaves the
//! actual CAS against the actual finish protocol, op by op.

use atm_runtime::dependence::TaskGraph;
use atm_runtime::{Access, DataStore, TaskDesc, TaskTypeId};
use atm_sync::check::{thread, Checker, FailureKind};
use std::sync::Arc;

/// One running task; the producer finishes it while the worker defers it.
/// Returns the graph so callers can assert quiescence.
fn deferral_handoff(legacy: bool) {
    let store = DataStore::new();
    let region = store.register_zeros::<f32>("r", 16).unwrap();
    let graph = Arc::new(TaskGraph::new());
    let (task, ready) = graph.submit(TaskDesc::new(
        TaskTypeId::from_raw(0),
        vec![Access::write(&region)],
    ));
    assert!(ready);
    graph.mark_running(task);

    // The in-flight producer completes the waiter it is providing for.
    let g2 = Arc::clone(&graph);
    let producer = thread::spawn(move || {
        g2.finish(task);
    });
    // The deferring worker marks the same task deferred.
    let g3 = Arc::clone(&graph);
    let worker = thread::spawn(move || {
        if legacy {
            g3.mark_deferred_legacy(task);
        } else {
            g3.mark_deferred(task);
        }
    });
    producer.join();
    worker.join();
}

#[test]
fn the_checker_rediscovers_the_pr4_deferral_race() {
    let report = Checker::exhaustive()
        .max_schedules(1_000)
        .check(|| deferral_handoff(true));
    let failure = report.failure.as_ref().unwrap_or_else(|| {
        panic!(
            "the seeded PR-4 race was not found in {} schedules",
            report.schedules
        )
    });
    assert_eq!(failure.kind, FailureKind::Panic, "found {failure}");
    assert!(
        !failure.schedule.is_empty(),
        "a found failure carries its reproducing schedule"
    );
    // The recorded schedule replays to the same panic, deterministically.
    let replayed = Checker::exhaustive().replay(|| deferral_handoff(true), &failure.schedule);
    assert_eq!(replayed.failure_kind(), Some(FailureKind::Panic));
}

#[test]
fn the_shipped_cas_fix_passes_the_same_budget_clean() {
    let report = Checker::exhaustive()
        .max_schedules(1_000)
        .check(|| deferral_handoff(false));
    report.assert_passed();
}

#[test]
fn the_shipped_cas_fix_survives_randomized_exploration() {
    let report = Checker::random(0xA7_1CC0DE, 200).check(|| deferral_handoff(false));
    report.assert_passed();
}
