//! Protocol 4 — last-hold node retirement.
//!
//! Every graph node carries a hold count: one hold for the submitting
//! batch, one per unfinished successor edge. Holds are dropped with a
//! `fetch_sub`; whoever drops the *last* hold retires the node — returning
//! its slot to the free list and recycling its storage. The release/acquire
//! pairing on the hold counter is what makes the recycling safe: the
//! retiring thread must observe every other holder's writes to the node
//! before tearing it down.
//!
//! The positive model asserts single retirement with full visibility of
//! both holders' writes; the negative model drops the decrement to
//! `Relaxed` and the checker must flag the resulting race between a
//! holder's node write and the retirer's teardown read.

use atm_sync::atomic::Ordering;
use atm_sync::check::sync::{AtomicUsize, Data};
use atm_sync::check::{thread, Checker, FailureKind};
use std::sync::Arc;

struct Node {
    /// Hold count; the final decrement retires the node.
    holds: AtomicUsize,
    /// Per-holder bookkeeping, one slot per holder, written before that
    /// holder's drop (completion stats in the real runtime).
    notes: [Data<u32>; 2],
    /// Set exactly once, by the retirer.
    retired: Data<bool>,
}

fn retirement_model(decrement_order: Ordering) {
    let node = Arc::new(Node {
        holds: AtomicUsize::new(2),
        notes: [Data::new(0), Data::new(0)],
        retired: Data::new(false),
    });

    let drop_hold = move |n: &Node, me: usize| {
        // A holder's last touch of the node before letting go: its own
        // slot, so the holders never contend with each other — only the
        // retirer's teardown read needs the ordering.
        n.notes[me].set(me as u32 + 1);
        if n.holds.fetch_sub(1, decrement_order) == 1 {
            // Last hold: retire. Teardown reads everything ever written to
            // the node, so both stamps must be visible here.
            let total: u32 = n.notes.iter().map(|slot| slot.get()).sum();
            assert_eq!(total, 1 + 2, "retirer sees all holders' writes");
            n.retired.with_mut(|r| {
                assert!(!*r, "node retired twice");
                *r = true;
            });
        }
    };

    let n2 = Arc::clone(&node);
    let other = thread::spawn(move || drop_hold(&n2, 0));
    drop_hold(&node, 1);
    other.join();

    assert_eq!(node.holds.load(Ordering::SeqCst), 0);
    assert!(node.retired.get(), "someone retired the node");
}

#[test]
fn last_hold_retirement_is_single_and_fully_ordered() {
    let report = Checker::exhaustive()
        .max_schedules(100_000)
        .check(|| retirement_model(Ordering::AcqRel));
    report.assert_passed();
    assert!(
        report.complete,
        "the retirement model should be exhaustively explorable, ran {}",
        report.schedules
    );
}

#[test]
fn relaxed_hold_drop_is_flagged_as_a_race() {
    // Relaxed decrements leave the retirer unsynchronized with the other
    // holder's `note` write — teardown races with it.
    let report = Checker::exhaustive()
        .max_schedules(100_000)
        .check(|| retirement_model(Ordering::Relaxed));
    assert_eq!(
        report.failure_kind(),
        Some(FailureKind::DataRace),
        "expected a data race from the relaxed hold drop, got {:?}",
        report.failure
    );
}
