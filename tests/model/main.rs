//! `atm-check` model suite: the workspace's load-bearing hand-rolled
//! protocols (six, at last count — see CONCURRENCY.md's inventory),
//! encoded as small models and explored by the deterministic model
//! checker in `atm_sync::check`.
//!
//! Each protocol gets (at least) a *positive* model — the shipped
//! discipline, asserted quiescent and race-free across the explored
//! schedule space — and a *negative* model that reintroduces the bug the
//! discipline exists to prevent, asserting the checker actually finds it.
//! The negative halves are what make the positive halves trustworthy: a
//! checker that cannot rediscover a seeded bug proves nothing by passing.
//!
//! The models run in the ordinary test suite (no special `cfg`): they are
//! written directly against the instrumented types in
//! `atm_sync::check::sync`. Building the whole workspace with
//! `RUSTFLAGS='--cfg atm_check'` additionally instruments *production*
//! code, which `ikt_regression` uses to drive the real `TaskGraph` under
//! the checker. See `CONCURRENCY.md` for the protocol inventory and the
//! modelling guide.

mod event_reset;
mod ikt_regression;
mod release;
mod release_packet;
mod retirement;
mod seqlock_bucket;
mod sleepers;
mod slot_reuse;
