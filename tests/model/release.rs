//! Protocol 3 — closed-successor-list release with the submission guard.
//!
//! `TaskGraph::submit` protects a task being wired with a *submission
//! guard*: `unresolved` starts at 1, each raw-dependence edge adds 1, and
//! the guard is released (fetch_sub) once wiring completes. A finishing
//! predecessor closes its successor list under the successor lock and
//! decrements `unresolved` of every registered successor. Whoever performs
//! the decrement that reaches zero owns the (exactly-one) ready push.
//!
//! The positive model asserts exactly-once readiness in every explored
//! schedule, with the producer's payload visible to the ready path (the
//! happens-before teeth). The negative model weakens the final decrement
//! to `Relaxed`, severing the publication — the checker must flag the
//! data race.

use atm_sync::atomic::Ordering;
use atm_sync::check::sync::{AtomicUsize, Data, Mutex};
use atm_sync::check::{thread, Checker, FailureKind};
use std::sync::Arc;

/// One predecessor (`pred`) finishing concurrently with the submission of
/// one successor that depends on it.
struct ReleaseModel {
    /// Predecessor's successor slot: `(closed, registered successors)`.
    pred_successors: Mutex<(bool, Vec<u32>)>,
    /// The successor's dependence count, submission guard included.
    unresolved: AtomicUsize,
    /// Payload written by the predecessor before it finishes; the ready
    /// path must observe it (happens-before via the `unresolved` RMWs).
    payload: Data<u64>,
    /// How many times the successor was pushed ready (must end at 1).
    ready_pushes: Data<u32>,
}

fn release_model(decrement_order: Ordering) {
    let m = Arc::new(ReleaseModel {
        pred_successors: Mutex::new((false, Vec::new())),
        // Submission guard: held by the submitting thread from the start.
        unresolved: AtomicUsize::new(1),
        payload: Data::new(0),
        ready_pushes: Data::new(0),
    });

    // The finishing predecessor.
    let m2 = Arc::clone(&m);
    let finisher = thread::spawn(move || {
        // The kernel's output, produced before the finish protocol runs.
        m2.payload.set(42);
        // Close the successor list; late submissions must not register.
        let successors = {
            let mut slot = m2.pred_successors.lock();
            slot.0 = true;
            std::mem::take(&mut slot.1)
        };
        for _succ in successors {
            let prev = m2.unresolved.fetch_sub(1, decrement_order);
            assert!(prev > 0, "successor with no unresolved dependences");
            if prev == 1 {
                // Final decrement: this thread owns the ready push.
                assert_eq!(m2.payload.get(), 42, "ready task sees its input");
                m2.ready_pushes.with_mut(|r| *r += 1);
            }
        }
    });

    // The submitting thread, wiring the successor onto the predecessor.
    let registered = {
        let mut slot = m.pred_successors.lock();
        if slot.0 {
            // Closed: the predecessor already finished; the dependence is
            // satisfied without an edge.
            false
        } else {
            slot.1.push(7);
            m.unresolved.fetch_add(1, Ordering::SeqCst);
            true
        }
    };
    // Release the submission guard; if everything else already resolved,
    // the submitter owns the ready push.
    let prev = m.unresolved.fetch_sub(1, decrement_order);
    assert!(prev > 0);
    if prev == 1 {
        assert_eq!(m.payload.get(), 42, "ready task sees its input");
        m.ready_pushes.with_mut(|r| *r += 1);
    }
    finisher.join();

    // Quiescence: all edges released, exactly one ready push.
    assert_eq!(m.unresolved.load(Ordering::SeqCst), 0);
    assert_eq!(m.ready_pushes.get(), 1, "exactly-once readiness");
    let _ = registered;
}

#[test]
fn closed_list_release_is_exactly_once_and_race_free() {
    let report = Checker::exhaustive()
        .max_schedules(100_000)
        .check(|| release_model(Ordering::SeqCst));
    report.assert_passed();
    assert!(
        report.complete,
        "the release model should be exhaustively explorable, ran {}",
        report.schedules
    );
}

#[test]
fn relaxed_final_decrement_is_flagged_as_a_race() {
    // With a Relaxed fetch_sub the producer's payload write is no longer
    // published to whoever takes the final decrement: the checker must
    // find a schedule where the ready path's read races with the write.
    let report = Checker::exhaustive()
        .max_schedules(100_000)
        .check(|| release_model(Ordering::Relaxed));
    assert_eq!(
        report.failure_kind(),
        Some(FailureKind::DataRace),
        "expected a data race from the relaxed decrement, got {:?}",
        report.failure
    );
}
