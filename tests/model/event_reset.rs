//! Protocol 2 — `Event` reset-under-stack-lock.
//!
//! A parking worker clears its sticky event and publishes itself on the
//! sleeper stack *in one critical section* (`ready_queue.rs::pop`). The
//! negative model moves the `reset` after the publication: a pusher can
//! then claim the worker and deliver its signal *between* the publication
//! and the reset, the reset eats the signal, and the worker sleeps through
//! a wakeup whose budget is already spent — a lost wakeup the checker must
//! find as a deadlock.

use atm_sync::atomic::Ordering;
use atm_sync::check::sync::{AtomicUsize, Data, Event, Mutex};
use atm_sync::check::{thread, Checker, FailureKind};
use std::sync::Arc;

/// Scripted single-park scenario shared by both variants.
///
/// Worker A parks once (announce, re-check, wait) and then consumes one
/// task. Thread B pushes task 1, spends the wakeup budget on whoever is on
/// the stack, consumes task 1 itself (a steal), then pushes task 2 —
/// without a second wakeup if the stack is empty, exactly like
/// `wake_after_push` after the budget was spent.
fn park_once_model(reset_under_lock: bool) {
    let queue = Arc::new(Mutex::new(Vec::<u32>::new()));
    let pending = Arc::new(AtomicUsize::new(0));
    let stack = Arc::new(Mutex::new(Vec::<usize>::new()));
    let parker = Arc::new(Event::new());
    let consumed = Arc::new(Data::new(0u32));

    let (q2, p2, s2, e2, c2) = (
        Arc::clone(&queue),
        Arc::clone(&pending),
        Arc::clone(&stack),
        Arc::clone(&parker),
        Arc::clone(&consumed),
    );
    let worker = thread::spawn(move || {
        // Announce the park.
        if reset_under_lock {
            // Shipped discipline: clear the stale signal and publish in one
            // critical section.
            let mut s = s2.lock();
            e2.reset();
            s.push(0);
        } else {
            // BUG under test: publish first, reset outside the lock.
            s2.lock().push(0);
            e2.reset();
        }
        // Re-check after the announcement, then sleep.
        if p2.load(Ordering::SeqCst) == 0 {
            e2.wait();
        } else {
            // Withdraw the park (may already have been claimed).
            let mut s = s2.lock();
            if let Some(at) = s.iter().position(|&w| w == 0) {
                s.remove(at);
            }
        }
        // Awake (or withdrawn): consume one task.
        let task = q2.lock().pop();
        if task.is_some() {
            p2.fetch_sub(1, Ordering::SeqCst);
            c2.with_mut(|c| *c += 1);
        }
    });

    // Push task 1: count it, land it, spend the wakeup budget.
    pending.fetch_add(1, Ordering::SeqCst);
    queue.lock().push(1);
    let claimed = stack.lock().pop();
    if let Some(w) = claimed {
        assert_eq!(w, 0);
        parker.signal();
    }
    // Steal task 1 ourselves.
    if queue.lock().pop().is_some() {
        pending.fetch_sub(1, Ordering::SeqCst);
    }
    // Push task 2; the wakeup budget for the worker is gone if it was
    // claimed above, and the stack tells us nobody (new) is asleep.
    pending.fetch_add(1, Ordering::SeqCst);
    queue.lock().push(2);
    if let Some(w) = stack.lock().pop() {
        assert_eq!(w, 0);
        parker.signal();
    }
    worker.join();
}

#[test]
fn reset_under_the_stack_lock_never_loses_a_wakeup() {
    let report = Checker::exhaustive()
        .max_schedules(100_000)
        .check(|| park_once_model(true));
    report.assert_passed();
    assert!(
        report.complete,
        "the positive event-reset model should be exhaustively explorable, ran {}",
        report.schedules
    );
}

#[test]
fn reset_after_publication_loses_a_wakeup_and_deadlocks() {
    let report = Checker::exhaustive()
        .max_schedules(100_000)
        .check(|| park_once_model(false));
    assert_eq!(
        report.failure_kind(),
        Some(FailureKind::Deadlock),
        "expected the lost-wakeup deadlock, got {:?}",
        report.failure
    );
    // The failure is deterministic: replaying the recorded schedule
    // reproduces it.
    let failure = report.failure.unwrap();
    let replayed = Checker::exhaustive().replay(|| park_once_model(false), &failure.schedule);
    assert_eq!(replayed.failure_kind(), Some(FailureKind::Deadlock));
}

#[test]
fn sticky_signal_survives_until_the_wait() {
    // The stickiness that makes the whole scheme work: signal-then-wait
    // completes in every order.
    let report = Checker::exhaustive().check(|| {
        let e = Arc::new(Event::new());
        let e2 = Arc::clone(&e);
        let t = thread::spawn(move || e2.signal());
        e.wait();
        t.join();
    });
    report.assert_passed();
    assert!(report.complete);
}
