//! Regression — slot recycling and the ABA a stale `TaskId` could cause.
//!
//! PR 9 re-keyed the dependence graph: a `TaskId` packs shard, slot and a
//! 28-bit generation, and a retired node's slot is recycled with its
//! generation bumped. The invariant under test: an id minted for one
//! occupant must **never** resolve to a later occupant of the same slot —
//! a stale lookup fails the generation compare and reads as "gone =
//! finished", the same answer a retired dense id gave before the rewrite.
//!
//! These tests drive the *real* `TaskGraph` (not a replica), recycling
//! slots through several generations. The sequential regression churns a
//! slot well past three generations and re-probes every retired id after
//! every round; the checker model races a stale reader against the
//! submissions that re-occupy its slot, so under `--cfg atm_check` the
//! interleaving of the slab's own lock and generation ops is explored op
//! by op.

use atm_runtime::dependence::{NodeState, TaskGraph};
use atm_runtime::{Access, DataStore, TaskDesc, TaskId, TaskTypeId};
use atm_sync::check::{thread, Checker};
use std::sync::Arc;

fn submit_one(graph: &TaskGraph, store: &DataStore) -> TaskId {
    let region = store.register_zeros::<f32>("r", 1).unwrap();
    let (id, ready) = graph.submit(TaskDesc::new(
        TaskTypeId::from_raw(0),
        vec![Access::write(&region)],
    ));
    assert!(ready);
    store.deregister(region).unwrap();
    id
}

/// Sequential regression: 64 submit/finish rounds cycle every shard's
/// slot 0 through four generations. After every round, every retired id
/// must still read as finished and no freshly minted id may collide with
/// a retired one.
#[test]
fn stale_ids_survive_three_plus_generations_of_slot_reuse() {
    let store = DataStore::new();
    let graph = TaskGraph::new();
    let mut retired: Vec<TaskId> = Vec::new();
    for round in 0..64 {
        let id = submit_one(&graph, &store);
        assert!(
            retired.iter().all(|r| r.raw() != id.raw()),
            "round {round}: a recycled slot re-minted a retired id ({id})"
        );
        graph.mark_running(id);
        graph.finish(id);
        retired.push(id);
        for &stale in &retired {
            assert!(
                graph.try_node(stale).is_none(),
                "round {round}: stale id {stale} resolved to a node"
            );
            assert_eq!(graph.state(stale), NodeState::Finished);
        }
        // One task in flight at a time: the slab recycles instead of
        // growing, so the graph never holds more than that one node.
        assert!(graph.live_nodes() <= 1);
    }
    assert_eq!(graph.retired_count(), 64);
}

/// The checker model: a reader holding a stale id probes the graph while
/// another thread's submissions re-occupy (and re-retire) the stale id's
/// slot. In every interleaving the stale id must read as finished — never
/// as the new occupant, never as a panic inside the slab.
fn stale_probe_race() {
    let store = DataStore::new();
    let graph = Arc::new(TaskGraph::new());
    // Retire one victim; its slot is now on the free list, its id stale.
    let victim = submit_one(&graph, &store);
    graph.mark_running(victim);
    graph.finish(victim);

    let g2 = Arc::clone(&graph);
    let recycler = thread::spawn(move || {
        let store = DataStore::new();
        // Enough submissions to wrap the shard rotation and re-occupy the
        // victim's slot (and retire it again, bumping the generation twice).
        for _ in 0..2 {
            let ids: Vec<TaskId> = (0..TaskId::SHARD_COUNT)
                .map(|_| submit_one(&g2, &store))
                .collect();
            for id in ids {
                g2.mark_running(id);
                g2.finish(id);
            }
        }
    });
    let g3 = Arc::clone(&graph);
    let reader = thread::spawn(move || {
        for _ in 0..3 {
            assert!(
                g3.try_node(victim).is_none(),
                "stale id {victim} aliased a recycled occupant"
            );
            assert_eq!(g3.state(victim), NodeState::Finished);
            thread::yield_now();
        }
    });
    recycler.join();
    reader.join();
}

#[test]
fn a_stale_reader_never_aliases_the_recycled_slot() {
    let report = Checker::exhaustive()
        .max_schedules(2_000)
        .check(stale_probe_race);
    report.assert_passed();
}

#[test]
fn a_stale_reader_never_aliases_under_randomized_exploration() {
    let report = Checker::random(0x51A1_E1D5, 200).check(stale_probe_race);
    report.assert_passed();
}
