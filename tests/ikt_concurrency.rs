//! The IKT deferred-copy-out path under real concurrency.
//!
//! §III-A of the paper: when a task becomes ready while another task with
//! the same hash key is *currently executing*, it must not re-execute — it
//! registers a postponed copy-out in the In-flight Key Table and the
//! producer's completion provides its outputs. The unit tests drive this by
//! hand; here real worker threads race through the scheduler and the
//! invariant is asserted end to end: exactly one kernel execution plus N
//! postponed copy-outs.

use atm_suite::prelude::*;
use atm_sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Polls `condition` until it holds or the timeout expires.
fn wait_for(what: &str, timeout: Duration, condition: impl Fn() -> bool) {
    let start = Instant::now();
    while !condition() {
        assert!(
            start.elapsed() < timeout,
            "timed out after {timeout:?} waiting for {what}"
        );
        std::thread::yield_now();
    }
}

#[test]
fn one_execution_plus_n_postponed_copy_outs() {
    const WAITERS: usize = 3;

    let engine = AtmEngine::shared(AtmConfig::static_atm());
    let rt = RuntimeBuilder::new()
        .workers(1 + WAITERS)
        .interceptor(engine.clone())
        .build();

    // The kernel announces that it is running and then blocks on a gate, so
    // the same-key tasks submitted afterwards are *guaranteed* to find the
    // producer in flight. It counts its executions to prove there was
    // exactly one.
    let executions = Arc::new(AtomicUsize::new(0));
    let in_kernel = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let (executions_k, in_kernel_k, release_k) = (
        Arc::clone(&executions),
        Arc::clone(&in_kernel),
        Arc::clone(&release),
    );
    let tt = rt.register_task_type(
        TaskTypeBuilder::new("gated_double", move |ctx| {
            executions_k.fetch_add(1, Ordering::SeqCst);
            in_kernel_k.store(true, Ordering::SeqCst);
            while !release_k.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            let x = ctx.arg::<f64>(0);
            let y: Vec<f64> = x.iter().map(|v| v * 2.0).collect();
            ctx.out(1, &y);
        })
        .arg::<f64>()
        .out::<f64>()
        .memoizable()
        .build(),
    );

    let input = rt
        .store()
        .register_typed("in", vec![1.5f64, 2.5, 3.5, 4.5])
        .unwrap();
    let outs: Vec<Region<f64>> = (0..=WAITERS)
        .map(|i| rt.store().register_zeros(format!("out{i}"), 4).unwrap())
        .collect();

    // Producer first; wait until its kernel is actually running (its key is
    // registered in the IKT before the kernel starts).
    rt.task(tt).reads(&input).writes(&outs[0]).submit().unwrap();
    wait_for(
        "the producer to enter its kernel",
        Duration::from_secs(10),
        || in_kernel.load(Ordering::SeqCst),
    );

    // Same-key tasks while the producer is in flight: each must defer.
    for out in &outs[1..] {
        rt.task(tt).reads(&input).writes(out).submit().unwrap();
    }
    wait_for(
        "all same-key tasks to defer onto the in-flight producer",
        Duration::from_secs(10),
        || engine.stats().ikt_deferred == WAITERS as u64,
    );

    // Open the gate; the producer finishes and performs the postponed
    // copy-outs; the deferred tasks complete without executing.
    release.store(true, Ordering::SeqCst);
    rt.taskwait();

    assert_eq!(
        executions.load(Ordering::SeqCst),
        1,
        "the kernel must run exactly once"
    );
    let stats = engine.stats();
    assert_eq!(stats.seen, 1 + WAITERS as u64);
    assert_eq!(stats.executed, 1);
    assert_eq!(stats.ikt_deferred, WAITERS as u64);
    assert_eq!(stats.tht_bypassed, 0, "nothing was in the THT yet");

    // Every task — producer and waiters — got the correct outputs.
    for out in &outs {
        assert_eq!(rt.store().read(*out).lock().as_f64(), &[3.0, 5.0, 7.0, 9.0]);
    }

    // The reuse provenance records one event per postponed copy-out, all
    // attributed to the producer task.
    let events = engine.reuse_events();
    assert_eq!(events.len(), WAITERS);
    assert!(events.iter().all(|e| !e.from_tht));

    // A latecomer with the same key now hits the THT instead of the IKT.
    let late = rt.store().register_zeros::<f64>("late", 4).unwrap();
    rt.task(tt).reads(&input).writes(&late).submit().unwrap();
    rt.taskwait();
    assert_eq!(engine.stats().tht_bypassed, 1);
    assert_eq!(executions.load(Ordering::SeqCst), 1);
    assert_eq!(rt.store().read(late).lock().as_f64(), &[3.0, 5.0, 7.0, 9.0]);

    rt.shutdown();
}

#[test]
fn concurrent_same_key_waves_reuse_almost_everything() {
    // A coarser stress shape: several distinct inputs, each submitted many
    // times concurrently. Every completion path (THT hit, IKT deferral,
    // execution) may be taken. Two same-key tasks can in principle both
    // miss the THT before either claims the in-flight key (the loser then
    // executes — a deliberate, safe race in the engine), so the exact-once
    // guarantee of the gated test above relaxes here to "at least once per
    // distinct input, with consistent accounting and correct outputs".
    const DISTINCT: usize = 4;
    const REPEATS: usize = 8;

    let engine = AtmEngine::shared(AtmConfig::static_atm());
    let rt = RuntimeBuilder::new()
        .workers(4)
        .interceptor(engine.clone())
        .build();
    let executions = Arc::new(AtomicUsize::new(0));
    let executions_k = Arc::clone(&executions);
    let tt = rt.register_task_type(
        TaskTypeBuilder::new("sum_sq", move |ctx| {
            executions_k.fetch_add(1, Ordering::SeqCst);
            let x = ctx.arg::<f64>(0);
            let total: f64 = x.iter().map(|v| v * v).sum();
            ctx.out(1, &[total]);
        })
        .arg::<f64>()
        .out::<f64>()
        .memoizable()
        .build(),
    );

    let inputs: Vec<Region<f64>> = (0..DISTINCT)
        .map(|i| {
            rt.store()
                .register_typed(format!("in{i}"), vec![i as f64 + 1.0; 64])
                .unwrap()
        })
        .collect();
    let mut outs = Vec::new();
    for r in 0..REPEATS {
        for (i, input) in inputs.iter().enumerate() {
            let out = rt
                .store()
                .register_zeros::<f64>(format!("out{r}_{i}"), 1)
                .unwrap();
            rt.task(tt).reads(input).writes(&out).submit().unwrap();
            outs.push((i, out));
        }
    }
    rt.taskwait();

    let executed = executions.load(Ordering::SeqCst);
    assert!(
        executed >= DISTINCT,
        "each distinct input must execute at least once"
    );
    let stats = engine.stats();
    assert_eq!(stats.seen, (DISTINCT * REPEATS) as u64);
    assert_eq!(stats.executed, executed as u64);
    assert_eq!(
        stats.reused() + stats.executed,
        stats.seen,
        "every task either executed or was reused"
    );
    assert!(
        stats.reused() > 0,
        "most of the stream must be served by the THT/IKT"
    );
    for (i, out) in outs {
        let expected = 64.0 * ((i as f64 + 1.0) * (i as f64 + 1.0));
        assert_eq!(rt.store().read(out).lock().as_f64(), &[expected]);
    }
    rt.shutdown();
}
