//! # atm-suite — Approximate Task Memoization in Rust
//!
//! Umbrella crate of the reproduction of *"ATM: Approximate Task Memoization
//! in the Runtime System"* (Brumar, Casas, Moretó, Valero, Sohi — IPDPS
//! 2017). It re-exports the component crates so applications can depend on a
//! single package:
//!
//! * [`runtime`] — the task-based dataflow runtime (typed regions, validated
//!   submission, dependences, ready queue, worker pool, tracing);
//! * [`store`] — the budgeted, policy-driven, persistent memo store behind
//!   the Task History Table (byte budgets, FIFO/LRU/cost-aware eviction,
//!   admission control, warm-start snapshots);
//! * [`atm`] — the ATM engine (Task History Table, In-flight Key Table,
//!   hash-key pipeline, static/dynamic/oracle modes);
//! * [`hash`] — the hashing and input-sampling substrate (Jenkins lookup3,
//!   deterministic PRNG, type-aware byte selection);
//! * [`metrics`] — correctness and performance metrics (Chebyshev and
//!   Euclidean relative errors, speedup, reuse);
//! * [`apps`] — the six evaluated applications (Blackscholes, Gauss-Seidel,
//!   Jacobi, Kmeans, Sparse LU, Swaptions).
//!
//! ## Quick start
//!
//! ```
//! use atm_suite::prelude::*;
//!
//! // 1. Create the ATM engine (respecting per-type MemoSpecs) and a
//! //    runtime with 2 workers.
//! let engine = AtmEngine::shared(AtmConfig::dynamic_atm());
//! let rt = RuntimeBuilder::new().workers(2).interceptor(engine.clone()).build();
//!
//! // 2. Register typed data regions and a memoizable task type. The typed
//! //    `Region<f64>` handles carry the element type; the task type
//! //    declares its access signature and its approximation policy (a
//! //    per-type `MemoSpec`) — submissions are validated against both.
//! let input = rt.store().register_typed("in", vec![2.0f64; 1024]).unwrap();
//! let out_a = rt.store().register_zeros::<f64>("a", 1024).unwrap();
//! let out_b = rt.store().register_zeros::<f64>("b", 1024).unwrap();
//! let square = rt.register_task_type(
//!     TaskTypeBuilder::new("square", |ctx| {
//!         let x = ctx.arg::<f64>(0);
//!         let y: Vec<f64> = x.iter().map(|v| v * v).collect();
//!         ctx.out(1, &y);
//!     })
//!     .arg::<f64>()
//!     .out::<f64>()
//!     .memo(MemoSpec::exact())
//!     .build(),
//! );
//!
//! // 3. Submit two tasks with identical inputs: the second is memoized.
//! rt.task(square).reads(&input).writes(&out_a).submit().unwrap();
//! rt.taskwait();
//! rt.task(square).reads(&input).writes(&out_b).submit().unwrap();
//! rt.taskwait();
//!
//! assert_eq!(rt.store().read(out_b).lock().as_f64()[0], 4.0);
//! assert_eq!(engine.stats().tht_bypassed, 1);
//! ```

#![warn(missing_docs)]

/// The six evaluated applications (re-export of [`atm_apps`]).
pub use atm_apps as apps;
/// The ATM engine (re-export of [`atm_core`]).
pub use atm_core as atm;
/// Hashing and input sampling (re-export of [`atm_hash`]).
pub use atm_hash as hash;
/// Correctness and performance metrics (re-export of [`atm_metrics`]).
pub use atm_metrics as metrics;
/// The task-dataflow runtime (re-export of [`atm_runtime`]).
pub use atm_runtime as runtime;
/// The memo store behind the THT (re-export of [`atm_store`]).
pub use atm_store as store;

/// Everything needed to write an ATM-accelerated task application.
pub mod prelude {
    pub use atm_core::{
        AtmConfig, AtmEngine, AtmMode, Percentage, PolicyKind, StoreConfig, ThtConfig,
    };
    pub use atm_runtime::prelude::*;
}

#[cfg(test)]
mod tests {
    #[test]
    fn re_exports_are_wired() {
        let _ = crate::atm::AtmConfig::static_atm();
        let _ = crate::hash::Percentage::FULL;
        assert_eq!(crate::apps::AppId::ALL.len(), 6);
    }
}
