//! Portfolio pricing (Blackscholes) with Approximate Task Memoization:
//! the financial-analysis workload that shows the largest gains in the
//! paper, because its program input replicates a small pool of distinct
//! option records and the pricing loop runs several times over the same
//! portfolio.
//!
//! Run with: `cargo run --release --example options_pricing`

use atm_apps::blackscholes::{Blackscholes, BlackscholesConfig};
use atm_apps::{BenchmarkApp, RunOptions};
use atm_suite::prelude::*;

fn main() {
    let config = BlackscholesConfig {
        options: 131_072,
        block_size: 4_096,
        distinct_options: 16_384,
        iterations: 5,
        seed: 42,
    };
    println!(
        "Blackscholes: {} options ({} distinct records), {} blocks, {} iterations",
        config.options,
        config.distinct_options,
        config.blocks(),
        config.iterations
    );
    let app = Blackscholes::new(config);
    let workers = 4;

    let baseline = app.run_tasked(&RunOptions::baseline(workers));
    let static_run = app.run_tasked(&RunOptions::with_atm(workers, AtmConfig::static_atm()));
    let dynamic_run = app.run_tasked(&RunOptions::with_atm(workers, AtmConfig::dynamic_atm()));

    for (label, run) in [
        ("baseline", &baseline),
        ("static ATM", &static_run),
        ("dynamic ATM", &dynamic_run),
    ] {
        println!(
            "{label:<12} wall {:>8.2} ms   executed {:>5}/{:<5}   reuse {:>5.1}%   correctness {:>7.3}%   speedup {:>5.2}x",
            run.wall.as_secs_f64() * 1e3,
            run.runtime_stats.executed,
            run.runtime_stats.submitted,
            run.reuse_percent(),
            app.correctness_percent(&run.output),
            baseline.wall.as_secs_f64() / run.wall.as_secs_f64(),
        );
    }

    assert_eq!(app.correctness_percent(&static_run.output), 100.0);
    println!(
        "\nATM memory overhead: static {:.1}% / dynamic {:.1}% of the application footprint",
        static_run.memory_overhead_percent(),
        dynamic_run.memory_overhead_percent()
    );
}
