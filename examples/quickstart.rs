//! Quickstart: transparent task memoization in ~60 lines.
//!
//! Defines one memoizable task type (a vector transformation), submits a
//! stream of tasks in which many inputs repeat, and shows how much work the
//! runtime avoided — without the task code knowing anything about ATM.
//!
//! Run with: `cargo run --release --example quickstart`

use atm_suite::prelude::*;

fn main() {
    // An ATM engine in Static mode: exact memoization, zero accuracy loss.
    let engine = AtmEngine::shared(AtmConfig::static_atm());
    let rt = RuntimeBuilder::new().workers(4).interceptor(engine.clone()).build();

    // Input data: 32 work items, but only 4 distinct payloads — the kind of
    // redundancy ATM exploits (repetitive program inputs).
    let payloads: Vec<RegionId> = (0..32)
        .map(|i| {
            let distinct = (i % 4) as f64;
            rt.store().register(
                format!("payload[{i}]"),
                RegionData::F64((0..4096).map(|j| distinct + (j as f64).sin()).collect()),
            )
        })
        .collect();
    let results: Vec<RegionId> =
        (0..32).map(|i| rt.store().register(format!("result[{i}]"), RegionData::F64(vec![0.0; 4096]))).collect();

    // The task type: an intentionally heavy transformation. The programmer
    // opts it into memoization — that is the only ATM-specific line.
    let transform = rt.register_task_type(
        TaskTypeBuilder::new("transform", |ctx| {
            let input = ctx.read_f64(0);
            let output: Vec<f64> = input.iter().map(|x| (x.exp().ln() + x.sqrt().powi(2)).sqrt()).collect();
            ctx.write_f64(1, &output);
        })
        .memoizable()
        .build(),
    );

    // Submit one task per work item.
    for (payload, result) in payloads.iter().zip(&results) {
        rt.submit(TaskDesc::new(
            transform,
            vec![Access::input(*payload, ElemType::F64), Access::output(*result, ElemType::F64)],
        ));
    }
    rt.taskwait();

    let runtime_stats = rt.stats();
    let atm_stats = engine.stats();
    println!("submitted tasks      : {}", runtime_stats.submitted);
    println!("actually executed    : {}", runtime_stats.executed);
    println!("memoized (THT hits)  : {}", atm_stats.tht_bypassed);
    println!("deferred (IKT hits)  : {}", atm_stats.ikt_deferred);
    println!("reuse                : {:.1}%", atm_stats.reuse_percent());
    println!("ATM memory overhead  : {} bytes", engine.memory_bytes());

    // Spot-check: every result region holds the transformation of its input.
    let sample = rt.store().read(results[7]).lock().as_f64()[0];
    let expected = {
        let x: f64 = 3.0 + 0.0f64.sin();
        (x.exp().ln() + x.sqrt().powi(2)).sqrt()
    };
    assert!((sample - expected).abs() < 1e-12, "memoized outputs must equal computed outputs");
    println!("output spot-check    : ok");

    rt.shutdown();
}
