//! Quickstart: transparent task memoization in ~60 lines.
//!
//! Defines one memoizable task type (a vector transformation), submits a
//! stream of tasks in which many inputs repeat, and shows how much work the
//! runtime avoided — without the task code knowing anything about ATM.
//!
//! Run with: `cargo run --release --example quickstart`

use atm_suite::prelude::*;

fn main() {
    // An ATM engine in Static mode: exact memoization, zero accuracy loss.
    let engine = AtmEngine::shared(AtmConfig::static_atm());
    let rt = RuntimeBuilder::new()
        .workers(4)
        .interceptor(engine.clone())
        .build();

    // Input data: 32 work items, but only 4 distinct payloads — the kind of
    // redundancy ATM exploits (repetitive program inputs).
    let payloads: Vec<Region<f64>> = (0..32)
        .map(|i| {
            let distinct = (i % 4) as f64;
            rt.store()
                .register_typed(
                    format!("payload[{i}]"),
                    (0..4096)
                        .map(|j| distinct + (j as f64).sin())
                        .collect::<Vec<f64>>(),
                )
                .expect("unique name")
        })
        .collect();
    let results: Vec<Region<f64>> = (0..32)
        .map(|i| {
            rt.store()
                .register_zeros(format!("result[{i}]"), 4096)
                .expect("unique name")
        })
        .collect();

    // The task type: an intentionally heavy transformation. The programmer
    // opts it into memoization — that is the only ATM-specific line — and
    // declares the access signature the runtime validates submissions with.
    let transform = rt.register_task_type(
        TaskTypeBuilder::new("transform", |ctx| {
            let input = ctx.arg::<f64>(0);
            let output: Vec<f64> = input
                .iter()
                .map(|x| (x.exp().ln() + x.sqrt().powi(2)).sqrt())
                .collect();
            ctx.out(1, &output);
        })
        .arg::<f64>()
        .out::<f64>()
        .memoizable()
        .build(),
    );

    // Submit one task per work item through the validating builder.
    for (payload, result) in payloads.iter().zip(&results) {
        rt.task(transform)
            .reads(payload)
            .writes(result)
            .submit()
            .expect("submission matches the declared signature");
    }
    rt.taskwait();

    let runtime_stats = rt.stats();
    let atm_stats = engine.stats();
    println!("submitted tasks      : {}", runtime_stats.submitted);
    println!("actually executed    : {}", runtime_stats.executed);
    println!("memoized (THT hits)  : {}", atm_stats.tht_bypassed);
    println!("deferred (IKT hits)  : {}", atm_stats.ikt_deferred);
    println!("reuse                : {:.1}%", atm_stats.reuse_percent());
    println!("ATM memory overhead  : {} bytes", engine.memory_bytes());

    // Spot-check: every result region holds the transformation of its input.
    let sample = rt.store().read(results[7]).lock().as_f64()[0];
    let expected = {
        let x: f64 = 3.0 + 0.0f64.sin();
        (x.exp().ln() + x.sqrt().powi(2)).sqrt()
    };
    assert!(
        (sample - expected).abs() < 1e-12,
        "memoized outputs must equal computed outputs"
    );
    println!("output spot-check    : ok");

    // Epilogue: persist the memo store and warm-start a fresh engine from
    // it. The new runtime registers the same task type first (key identity
    // depends on the registration order) and re-registers one payload with
    // identical contents — its very first task is already a hit.
    let snapshot = std::env::temp_dir().join(format!("atm-quickstart-{}.bin", std::process::id()));
    engine
        .save_store(&snapshot)
        .expect("persisting the memo store");
    rt.shutdown();

    let warm_engine = AtmEngine::shared(AtmConfig::static_atm());
    let reloaded = warm_engine
        .warm_start_from(&snapshot)
        .expect("reloading the memo store");
    let warm_rt = RuntimeBuilder::new()
        .workers(2)
        .interceptor(warm_engine.clone())
        .build();
    let warm_transform = warm_rt.register_task_type(
        TaskTypeBuilder::new("transform", |ctx| {
            let input = ctx.arg::<f64>(0);
            let output: Vec<f64> = input
                .iter()
                .map(|x| (x.exp().ln() + x.sqrt().powi(2)).sqrt())
                .collect();
            ctx.out(1, &output);
        })
        .arg::<f64>()
        .out::<f64>()
        .memoizable()
        .build(),
    );
    let payload = warm_rt
        .store()
        .register_typed(
            "payload",
            (0..4096)
                .map(|j| 2.0 + (j as f64).sin())
                .collect::<Vec<f64>>(),
        )
        .expect("unique name");
    let result = warm_rt
        .store()
        .register_zeros::<f64>("result", 4096)
        .expect("unique name");
    warm_rt
        .task(warm_transform)
        .reads(&payload)
        .writes(&result)
        .submit()
        .expect("valid submission");
    warm_rt.taskwait();
    println!(
        "warm start           : {reloaded} entries reloaded, first task {} (0 executions)",
        if warm_engine.stats().tht_bypassed == 1 {
            "memoized"
        } else {
            "executed"
        }
    );
    assert_eq!(warm_engine.stats().executed, 0, "warm start must bypass");

    let _ = std::fs::remove_file(&snapshot);
    warm_rt.shutdown();
}
