//! Heat diffusion (Gauss-Seidel) with and without Approximate Task
//! Memoization: the stencil-computation workload the paper's evaluation
//! uses, at a laptop-friendly size.
//!
//! Run with: `cargo run --release --example heat_diffusion`

use atm_apps::stencil::{Stencil, StencilConfig, StencilVariant};
use atm_apps::{BenchmarkApp, RunOptions};
use atm_suite::prelude::*;

fn main() {
    let config = StencilConfig {
        blocks: 8,
        block_size: 32,
        iterations: 8,
        wall_temperature: 1.0,
        init_levels: 2,
        seed: 7,
    };
    println!(
        "Gauss-Seidel heat diffusion: {0}x{0} blocks of {1}x{1} cells, {2} sweeps",
        config.blocks, config.block_size, config.iterations
    );
    let app = Stencil::new(StencilVariant::GaussSeidel, config);

    // Baseline (no ATM), Static ATM and Dynamic ATM, all with 4 workers.
    let workers = 4;
    let baseline = app.run_tasked(&RunOptions::baseline(workers));
    let static_run = app.run_tasked(&RunOptions::with_atm(workers, AtmConfig::static_atm()));
    let dynamic_run = app.run_tasked(&RunOptions::with_atm(workers, AtmConfig::dynamic_atm()));

    let report = |label: &str, run: &atm_apps::AppRun| {
        println!(
            "{label:<14} wall {:>8.2} ms   reuse {:>5.1}%   correctness {:>7.3}%   speedup {:>5.2}x",
            run.wall.as_secs_f64() * 1e3,
            run.reuse_percent(),
            app.correctness_percent(&run.output),
            baseline.wall.as_secs_f64() / run.wall.as_secs_f64(),
        );
    };
    report("baseline", &baseline);
    report("static ATM", &static_run);
    report("dynamic ATM", &dynamic_run);

    // The interesting qualitative facts from the paper, checked here:
    assert_eq!(
        app.correctness_percent(&static_run.output),
        100.0,
        "static ATM never loses accuracy"
    );
    println!(
        "\ndynamic ATM settled on p = {:.4}% of the task input bytes",
        dynamic_run
            .type_summaries
            .values()
            .find(|s| s.name == "stencilComputation")
            .map(|s| s.final_p * 100.0)
            .unwrap_or(100.0)
    );
}
