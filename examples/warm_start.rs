//! Warm start: persist the memo store and reuse it in a later run.
//!
//! The paper's THT is rebuilt from scratch on every run, so every distinct
//! input pays the full kernel cost at least once per process. This example
//! runs the same workload twice in two *separate* runtimes:
//!
//! 1. the **cold run** executes every distinct task once and persists the
//!    memo store with [`AtmEngine::save_store`];
//! 2. the **warm run** reloads the snapshot with
//!    [`AtmEngine::warm_start_from`] before any task is submitted — its very
//!    first taskwait already has a 100 % hit rate and zero kernel runs.
//!
//! The warm engine also demonstrates the store's production knobs: a byte
//! budget with cost-aware eviction, so reloading a snapshot larger than the
//! budget keeps the most valuable entries instead of overflowing.
//!
//! Warm-start contract: hash keys embed the task-type id and the key seed,
//! so the second run must register its task types in the same order and use
//! the same `key_seed` (both are the defaults here).
//!
//! Run with: `cargo run --release --example warm_start`

use atm_suite::atm::PolicyKind;
use atm_suite::prelude::*;
use std::sync::Arc;

const DISTINCT: usize = 6;
const ELEMS: usize = 2048;

/// Builds a runtime around `engine`, registers the (deterministic) payloads
/// and the memoizable task type, submits one task per payload and waits.
fn run_workload(engine: Arc<AtmEngine>) {
    let rt = RuntimeBuilder::new().workers(2).interceptor(engine).build();

    // Task-type registration order must match across runs (see module docs).
    let simulate = rt.register_task_type(
        TaskTypeBuilder::new("simulate", |ctx| {
            let input = ctx.arg::<f64>(0);
            let out: Vec<f64> = input
                .iter()
                .map(|x| {
                    let mut v = *x;
                    for _ in 0..64 {
                        v = (v.sin() + 1.5).sqrt();
                    }
                    v
                })
                .collect();
            ctx.out(1, &out);
        })
        .arg::<f64>()
        .out::<f64>()
        .memoizable()
        .build(),
    );

    for i in 0..DISTINCT {
        let payload = rt
            .store()
            .register_typed(
                format!("payload[{i}]"),
                (0..ELEMS)
                    .map(|j| i as f64 + (j as f64).cos())
                    .collect::<Vec<f64>>(),
            )
            .expect("unique name");
        let result = rt
            .store()
            .register_zeros::<f64>(format!("result[{i}]"), ELEMS)
            .expect("unique name");
        rt.task(simulate)
            .reads(&payload)
            .writes(&result)
            .submit()
            .expect("valid submission");
    }
    rt.taskwait();
    rt.shutdown();
}

fn report(label: &str, engine: &AtmEngine) {
    let stats = engine.stats();
    let store = engine.store_counters();
    println!("{label}:");
    println!("  kernel executions   : {}", stats.executed);
    println!("  THT hits            : {}", stats.tht_bypassed);
    println!("  store resident bytes: {}", store.resident_bytes);
    println!(
        "  saved kernel time   : {:.3} ms",
        store.saved_ns as f64 / 1e6
    );
}

fn main() {
    let path = std::env::temp_dir().join(format!("atm-warm-start-{}.bin", std::process::id()));

    // --- Run 1: cold. Every distinct input executes; persist the table. ---
    let cold = AtmEngine::shared(AtmConfig::static_atm());
    run_workload(cold.clone());
    cold.save_store(&path).expect("persisting the memo store");
    report("cold run", &cold);
    println!(
        "  snapshot            : {} entries -> {}\n",
        cold.tht().len(),
        path.display()
    );

    // --- Run 2: warm. A brand-new engine (budgeted, cost-aware) reloads the
    // snapshot before its first task; nothing executes. ---
    let warm = AtmEngine::shared(
        AtmConfig::static_atm()
            .with_policy(PolicyKind::CostAware)
            .with_byte_budget(4 * 1024 * 1024)
            .with_admission_fraction(0.25),
    );
    let reloaded = warm
        .warm_start_from(&path)
        .expect("reloading the memo store");
    run_workload(warm.clone());
    report("warm run", &warm);
    println!("  entries reloaded    : {reloaded}");

    assert_eq!(
        warm.stats().executed,
        0,
        "a warm-started run must not execute any distinct input again"
    );
    assert_eq!(warm.stats().tht_bypassed, DISTINCT as u64);
    println!("\nwarm start verified: 100% hit rate at the first taskwait, 0 executions");

    let _ = std::fs::remove_file(&path);
}
