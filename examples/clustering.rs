//! Kmeans clustering with Approximate Task Memoization: the workload where
//! *exact* memoization finds nothing (the centres move every iteration) and
//! only the approximate keys of Dynamic ATM can exploit the redundancy of
//! already-converged clusters.
//!
//! Run with: `cargo run --release --example clustering`

use atm_apps::kmeans::{Kmeans, KmeansConfig};
use atm_apps::{BenchmarkApp, RunOptions};
use atm_suite::prelude::*;

fn main() {
    let config = KmeansConfig {
        points: 32_768,
        dims: 16,
        clusters: 8,
        block_size: 2_048,
        iterations: 12,
        seed: 1234,
    };
    println!(
        "Kmeans: {} points, {} dimensions, {} clusters, {} Lloyd iterations",
        config.points, config.dims, config.clusters, config.iterations
    );
    let app = Kmeans::new(config);
    let workers = 4;

    let baseline = app.run_tasked(&RunOptions::baseline(workers));
    let static_run = app.run_tasked(&RunOptions::with_atm(workers, AtmConfig::static_atm()));
    let dynamic_run = app.run_tasked(&RunOptions::with_atm(workers, AtmConfig::dynamic_atm()));

    for (label, run) in [
        ("baseline", &baseline),
        ("static ATM", &static_run),
        ("dynamic ATM", &dynamic_run),
    ] {
        println!(
            "{label:<12} wall {:>8.2} ms   reuse {:>5.1}%   correctness {:>7.3}%   speedup {:>5.2}x",
            run.wall.as_secs_f64() * 1e3,
            run.reuse_percent(),
            app.correctness_percent(&run.output),
            baseline.wall.as_secs_f64() / run.wall.as_secs_f64(),
        );
    }

    println!(
        "\nexact matches found by static ATM : {:>5} of {} tasks",
        static_run.atm_stats.reused(),
        static_run.atm_stats.seen
    );
    println!(
        "approximate matches by dynamic ATM: {:>5} of {} tasks (τ_max = 20%, trained p = {:.4}%)",
        dynamic_run.atm_stats.reused() + dynamic_run.atm_stats.training_hits,
        dynamic_run.atm_stats.seen,
        dynamic_run
            .type_summaries
            .values()
            .find(|s| s.name == "kmeans_calculate")
            .map(|s| s.final_p * 100.0)
            .unwrap_or(100.0)
    );
}
